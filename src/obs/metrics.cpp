#include "obs/metrics.hpp"

#include "obs/stability.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rfdnet::obs {

namespace {

/// Shortest round-trip formatting, so equal doubles always print the same
/// bytes (JSON determinism is checked by the sweep property tests).
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_quoted(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted");
  }
}

void Histogram::observe(double x) {
  if (std::isnan(x)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double prev = cum;
    cum += static_cast<double>(buckets_[i]);
    if (cum < rank || buckets_[i] == 0) continue;
    // Overflow bucket has no upper edge; clamp the estimate to the last
    // bound (the histogram cannot say more).
    if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    const double frac = (rank - prev) / static_cast<double>(buckets_[i]);
    return lo + (hi - lo) * frac;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::inject(const std::vector<std::uint64_t>& bucket_counts,
                       double sum) {
  if (bucket_counts.size() != buckets_.size()) {
    throw std::logic_error("Histogram::inject: bucket count mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += bucket_counts[i];
    count_ += bucket_counts[i];
  }
  sum_ += sum;
}

std::vector<double> Histogram::default_bounds() {
  return {1.0, 10.0, 100.0, 1000.0, 10000.0};
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].value_ += c.value_;
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauges_[name];
    mine.value_ += g.value_;
    mine.max_ = std::max(mine.max_, g.max_);
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    Histogram& mine = it->second;
    if (mine.bounds_ != h.bounds_) {
      throw std::logic_error("Registry::merge: histogram bounds differ: " +
                             name);
    }
    for (std::size_t i = 0; i < mine.buckets_.size(); ++i) {
      mine.buckets_[i] += h.buckets_[i];
    }
    mine.count_ += h.count_;
    mine.sum_ += h.sum_;
  }
}

bool Registry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::size_t Registry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    write_quoted(os, name);
    os << ':' << c.value_;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    write_quoted(os, name);
    os << ":{\"value\":" << g.value_ << ",\"max\":" << g.max_ << '}';
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    write_quoted(os, name);
    os << ":{\"count\":" << h.count_ << ",\"sum\":" << fmt_double(h.sum_)
       << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds_.size(); ++i) {
      if (i > 0) os << ',';
      os << fmt_double(h.bounds_[i]);
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets_.size(); ++i) {
      if (i > 0) os << ',';
      os << h.buckets_[i];
    }
    os << "]}";
  }
  os << "}}";
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void Registry::write_summary(std::ostream& os, const std::string& indent) const {
  for (const auto& [name, c] : counters_) {
    os << indent << name << " = " << c.value_ << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << indent << name << " = " << g.value_ << " (max " << g.max_ << ")\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << indent << name << " = count " << h.count_ << ", sum "
       << fmt_double(h.sum_);
    if (h.count_ > 0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), ", p50 ~%.3g, p90 ~%.3g, p99 ~%.3g",
                    h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
      os << buf;
    }
    os << '\n';
  }
}

EngineMetrics EngineMetrics::bind_logical(Registry& r) {
  EngineMetrics m;
  m.scheduled = &r.counter("engine.scheduled");
  m.cancelled = &r.counter("engine.cancelled");
  m.fired = &r.counter("engine.fired");
  return m;
}

EngineMetrics EngineMetrics::bind(Registry& r) {
  EngineMetrics m = bind_logical(r);
  m.compactions = &r.counter("engine.compactions");
  m.heap = &r.gauge("engine.heap");
  m.live = &r.gauge("engine.live");
  return m;
}

RouterMetrics RouterMetrics::bind_logical(Registry& r) {
  RouterMetrics m;
  m.sends = &r.counter("bgp.sends");
  m.withdrawals = &r.counter("bgp.withdrawals");
  m.mrai_deferrals = &r.counter("bgp.mrai_deferrals");
  return m;
}

RouterMetrics RouterMetrics::bind(Registry& r) {
  RouterMetrics m = bind_logical(r);
  m.pending = &r.gauge("bgp.pending");
  m.rib_resident = &r.gauge("bgp.rib_resident");
  m.rib_resident_peak = &r.gauge("bgp.rib_resident_peak");
  return m;
}

DampingMetrics DampingMetrics::bind_logical(Registry& r) {
  DampingMetrics m;
  m.charges = &r.counter("rfd.charges");
  m.suppressions = &r.counter("rfd.suppressions");
  m.reuses = &r.counter("rfd.reuses");
  m.reschedules = &r.counter("rfd.reschedules");
  return m;
}

DampingMetrics DampingMetrics::bind(Registry& r) {
  DampingMetrics m = bind_logical(r);
  m.penalty = &r.histogram("rfd.penalty");
  m.tracked = &r.gauge("rfd.tracked_entries");
  m.tracked_peak = &r.gauge("rfd.tracked_entries_peak");
  m.active = &r.gauge("rfd.active_entries");
  m.active_peak = &r.gauge("rfd.active_entries_peak");
  return m;
}

PhaseMetrics PhaseMetrics::bind(Registry& r) {
  // Duration buckets in seconds: sub-minute through the ~1h suppression tail.
  const std::vector<double> secs = {1.0, 10.0, 60.0, 300.0, 900.0, 3600.0};
  PhaseMetrics m;
  m.charging = &r.histogram("phase.charging", secs);
  m.suppression = &r.histogram("phase.suppression", secs);
  m.releasing = &r.histogram("phase.releasing", secs);
  m.intervals = &r.counter("phase.intervals");
  return m;
}

FaultMetrics FaultMetrics::bind(Registry& r) {
  FaultMetrics m;
  m.injected = &r.counter("fault.injected");
  m.link_downs = &r.counter("fault.link_downs");
  m.link_ups = &r.counter("fault.link_ups");
  m.restarts = &r.counter("fault.restarts");
  m.perturb_drops = &r.counter("fault.perturb_drops");
  m.perturb_delays = &r.counter("fault.perturb_delays");
  m.held_links = &r.gauge("fault.held_links");
  return m;
}

namespace {

/// Registry-side bucket edges mirroring a FixedHist's integer bounds, scaled
/// by `unit` (1e6 for microsecond histograms reported in seconds).
std::vector<double> scaled_bounds(const std::vector<std::int64_t>& bounds,
                                  double unit) {
  std::vector<double> out;
  out.reserve(bounds.size());
  for (const std::int64_t b : bounds) {
    out.push_back(static_cast<double>(b) / unit);
  }
  return out;
}

}  // namespace

StabilityMetrics StabilityMetrics::bind(Registry& r) {
  StabilityMetrics m;
  m.updates = &r.counter("stability.updates");
  m.withdrawals = &r.counter("stability.withdrawals");
  m.trains = &r.counter("stability.trains");
  m.singletons = &r.counter("stability.singleton_trains");
  m.suppressions = &r.counter("stability.suppressions");
  m.reuses = &r.counter("stability.reuses");
  m.keys = &r.gauge("stability.keys");
  m.max_train_len = &r.gauge("stability.max_train_len");
  m.score_ppm = &r.gauge("stability.score_ppm");
  m.train_len = &r.histogram(
      "stability.train_len",
      scaled_bounds(StabilityReport::train_len_bounds(), 1.0));
  m.train_duration = &r.histogram(
      "stability.train_duration_s",
      scaled_bounds(StabilityReport::duration_bounds_us(), 1e6));
  m.intra_arrival = &r.histogram(
      "stability.intra_arrival_s",
      scaled_bounds(StabilityReport::intra_bounds_us(), 1e6));
  return m;
}

void StabilityMetrics::record(const StabilityReport& report) const {
  updates->inc(report.updates);
  withdrawals->inc(report.withdrawals);
  trains->inc(report.trains);
  singletons->inc(report.singletons);
  suppressions->inc(report.suppresses);
  reuses->inc(report.reuses);
  keys->set(static_cast<std::int64_t>(report.keys.size()));
  max_train_len->set(static_cast<std::int64_t>(report.max_len));
  // Integer parts-per-million: the gauge stays shard-count-invariant (the
  // score is a ratio of merged integer totals).
  score_ppm->set(static_cast<std::int64_t>(report.score() * 1e6 + 0.5));
  // Histograms land pre-bucketed: the tracker accumulates integer
  // microsecond sums, so the double `sum` here is a single conversion, not
  // an order-dependent accumulation.
  train_len->inject(report.train_len_hist.buckets(),
                    static_cast<double>(report.train_len_hist.sum()));
  train_duration->inject(
      report.train_dur_hist.buckets(),
      static_cast<double>(report.train_dur_hist.sum()) / 1e6);
  intra_arrival->inject(report.intra_hist.buckets(),
                        static_cast<double>(report.intra_hist.sum()) / 1e6);
}

SvcMetrics SvcMetrics::bind(Registry& r) {
  SvcMetrics m;
  m.accepted = &r.counter("svc.jobs_accepted");
  m.completed = &r.counter("svc.jobs_completed");
  m.failed = &r.counter("svc.jobs_failed");
  m.cache_hits = &r.counter("svc.cache_hits");
  m.coalesced = &r.counter("svc.singleflight_joins");
  m.rejected_full = &r.counter("svc.rejected_queue_full");
  m.rejected_draining = &r.counter("svc.rejected_draining");
  m.queue_depth = &r.gauge("svc.queue_depth");
  m.running = &r.gauge("svc.running");
  return m;
}

ShardMetrics ShardMetrics::bind(Registry& r) {
  ShardMetrics m;
  m.rounds = &r.counter("shard.rounds");
  m.cross_posted = &r.counter("shard.cross_posted");
  m.cross_admitted = &r.counter("shard.cross_admitted");
  m.shards = &r.gauge("shard.shards");
  m.cut_links = &r.gauge("shard.cut_links");
  m.lookahead_us = &r.gauge("shard.lookahead_us");
  m.barrier_wait_us = &r.gauge("shard.barrier_wait_us");
  return m;
}

void ShardMetrics::record(std::uint64_t rounds_n, std::uint64_t posted,
                          std::uint64_t admitted, int shard_count,
                          std::size_t cuts, double lookahead_s,
                          std::uint64_t wait_ns) const {
  rounds->inc(rounds_n);
  cross_posted->inc(posted);
  cross_admitted->inc(admitted);
  shards->set(shard_count);
  cut_links->set(static_cast<std::int64_t>(cuts));
  lookahead_us->set(static_cast<std::int64_t>(lookahead_s * 1e6));
  barrier_wait_us->set(static_cast<std::int64_t>(wait_ns / 1000));
}

}  // namespace rfdnet::obs
