#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace rfdnet::obs {

std::optional<TraceFormat> parse_trace_format(std::string_view s) {
  if (s == "jsonl") return TraceFormat::kJsonl;
  if (s == "chrome") return TraceFormat::kChrome;
  return std::nullopt;
}

std::string to_string(TraceFormat f) {
  switch (f) {
    case TraceFormat::kJsonl:
      return "jsonl";
    case TraceFormat::kChrome:
      return "chrome";
  }
  return "?";
}

TraceSink::TraceSink(std::ostream& os) : os_(&os) {}

TraceSink::TraceSink(const std::string& path) : owned_(path), os_(&owned_) {
  if (!owned_) throw std::runtime_error("TraceSink: cannot open " + path);
}

void TraceSink::line(const char* buf) {
  *os_ << buf << '\n';
  ++records_;
}

void TraceSink::engine_step(double t_s, std::uint64_t seq, std::size_t pending,
                            std::size_t heap) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"engine.step\",\"t\":%.6f,\"seq\":%llu,"
                "\"pending\":%zu,\"heap\":%zu}",
                t_s, static_cast<unsigned long long>(seq), pending, heap);
  line(buf);
}

void TraceSink::bgp_send(double t_s, std::uint32_t from, std::uint32_t to,
                         std::uint32_t prefix, bool withdrawal) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"bgp.send\",\"t\":%.6f,\"from\":%u,\"to\":%u,"
                "\"prefix\":%u,\"kind\":\"%s\"}",
                t_s, from, to, prefix, withdrawal ? "withdraw" : "announce");
  line(buf);
}

void TraceSink::rfd_suppress(double t_s, std::uint32_t node, std::uint32_t peer,
                             std::uint32_t prefix, double penalty) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"rfd.suppress\",\"t\":%.6f,\"node\":%u,"
                "\"peer\":%u,\"prefix\":%u,\"penalty\":%.3f}",
                t_s, node, peer, prefix, penalty);
  line(buf);
}

void TraceSink::rfd_reuse(double t_s, std::uint32_t node, std::uint32_t peer,
                          std::uint32_t prefix, bool noisy) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"rfd.reuse\",\"t\":%.6f,\"node\":%u,\"peer\":%u,"
                "\"prefix\":%u,\"noisy\":%s}",
                t_s, node, peer, prefix, noisy ? "true" : "false");
  line(buf);
}

void TraceSink::fault_inject(double t_s, const char* kind, std::uint32_t u,
                             std::uint32_t v) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"fault.inject\",\"t\":%.6f,\"kind\":\"%s\","
                "\"u\":%u,\"v\":%u}",
                t_s, kind, u, v);
  line(buf);
}

void TraceSink::fault_perturb(double t_s, std::uint32_t from, std::uint32_t to,
                              bool dropped, double extra_delay_s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"fault.perturb\",\"t\":%.6f,\"from\":%u,"
                "\"to\":%u,\"effect\":\"%s\",\"extra\":%.6f}",
                t_s, from, to, dropped ? "drop" : "delay", extra_delay_s);
  line(buf);
}

void TraceSink::span(std::uint32_t trace_id, std::uint32_t span_id,
                     std::uint32_t parent_span_id, const char* kind,
                     double t0_s, double t1_s, std::uint32_t node,
                     std::uint32_t peer, std::uint32_t prefix) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"span\",\"trace\":%u,\"span\":%u,\"parent\":%u,"
                "\"kind\":\"%s\",\"t0\":%.6f,\"t1\":%.6f,\"node\":%u,"
                "\"peer\":%u,\"prefix\":%u}",
                trace_id, span_id, parent_span_id, kind, t0_s, t1_s, node,
                peer, prefix);
  line(buf);
}

void TraceSink::phase(std::uint32_t node, std::uint32_t peer,
                      std::uint32_t prefix, const char* phase_name,
                      double t0_s, double t1_s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"phase\",\"node\":%u,\"peer\":%u,\"prefix\":%u,"
                "\"phase\":\"%s\",\"t0\":%.6f,\"t1\":%.6f}",
                node, peer, prefix, phase_name, t0_s, t1_s);
  line(buf);
}

void TraceSink::flush() { os_->flush(); }

}  // namespace rfdnet::obs
