#pragma once

#include <atomic>
#include <stdexcept>

namespace rfdnet::obs {

/// Thrown when a runtime invariant check fails. A `std::logic_error`: an
/// invariant violation is always a programming error in the simulator, never
/// a property of the simulated scenario.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
extern std::atomic<bool> g_invariants_enabled;
}

/// Whether the gated hot-path checks (`RFDNET_INVARIANT`) are active.
/// Defaults: on in debug builds (no NDEBUG), off in release — so the bench
/// binaries pay one predictable branch per check and the test suite turns
/// them on explicitly in its main() (tests/support/test_main.cpp).
inline bool invariants_enabled() {
  return detail::g_invariants_enabled.load(std::memory_order_relaxed);
}

void set_invariants_enabled(bool on);

[[noreturn]] void invariant_failed(const char* what);

/// Ungated check for explicit audit entry points (`check_invariants()`
/// methods): the caller asked for the audit, so it always runs.
inline void check_always(bool cond, const char* what) {
  if (!cond) invariant_failed(what);
}

}  // namespace rfdnet::obs

/// Hot-path invariant: evaluated only while invariants are enabled, throws
/// `obs::InvariantViolation` on failure. Keep `cond` side-effect free.
#define RFDNET_INVARIANT(cond, what)                                     \
  do {                                                                   \
    if (::rfdnet::obs::invariants_enabled() && !(cond)) {                \
      ::rfdnet::obs::invariant_failed(what);                             \
    }                                                                    \
  } while (0)
