#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rfdnet::obs {

/// Monotone event count. Instrumented components hold a `Counter*` obtained
/// from a `Registry` once at wiring time, so the hot path is a single
/// increment — no name lookup, no hashing.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  friend class Registry;
  std::uint64_t value_ = 0;
};

/// Instantaneous level with a high-water mark (e.g. heap size, pending
/// depth). Merging sums the final levels and takes the max of the marks.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t delta) { set(value_ + delta); }
  std::int64_t value() const { return value_; }
  std::int64_t max() const { return max_; }

 private:
  friend class Registry;
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Fixed-bound histogram: `bounds()[i]` is the inclusive upper edge of
/// bucket i; one implicit overflow bucket catches everything above the last
/// bound. Bounds are fixed at creation so merging is bucket-wise addition.
class Histogram {
 public:
  Histogram() : Histogram(default_bounds()) {}
  explicit Histogram(std::vector<double> upper_bounds);

  /// NaN observations are dropped — a NaN would poison `sum()` and fall into
  /// the overflow bucket (every comparison with a bound is false), silently
  /// skewing the tail estimate.
  void observe(double x);

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation within the
  /// bucket holding the target rank; the first bucket interpolates from 0 and
  /// the overflow bucket clamps to the last bound. NaN when empty.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Size `bounds().size() + 1`; the last entry is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Adds pre-bucketed observations: bucket-wise counts (must match this
  /// histogram's bucket count, bounds + overflow) plus their summed value.
  /// Lets integer accumulators (the stability trains) land in the registry
  /// without replaying individual observations.
  void inject(const std::vector<std::uint64_t>& bucket_counts, double sum);

  /// Decades from 1 to 10^4 — spans the damping penalty range (paper
  /// increments are 500..1000, ceiling ~12000).
  static std::vector<double> default_bounds();

 private:
  friend class Registry;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Named metrics for one simulation run. Backed by `std::map`, so metric
/// addresses are stable across inserts (components keep raw pointers) and
/// every export iterates in sorted name order — two registries holding the
/// same values always serialize byte-identically.
class Registry {
 public:
  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = Histogram::default_bounds());

  /// Folds `other` into this registry: counters and histogram buckets add,
  /// gauge levels add and high-water marks take the max. Addition is
  /// commutative, so any merge order yields the same registry; sweep code
  /// still merges in canonical (point, seed) order. Histograms with the
  /// same name must share bounds (throws `std::logic_error` otherwise).
  void merge(const Registry& other);

  bool empty() const;
  std::size_t size() const;

  /// Single JSON object, keys sorted: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}. Deterministic for equal contents.
  void write_json(std::ostream& os) const;
  std::string json() const;

  /// Human-readable block, one metric per line, for report footers.
  void write_summary(std::ostream& os, const std::string& indent = "  ") const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Typed wiring bundle for `sim::Engine`. `bind` registers the metrics under
/// canonical names; the engine then increments through the pointers.
///
/// The fields split into *logical* counters (one increment per logical
/// simulation event — handler-driven schedules, cancels, fires — so
/// per-shard values add to the serial value exactly) and
/// *partition-dependent* figures (compaction count, heap/live occupancy:
/// artifacts of how the event set is laid out across engines).
/// `bind_logical` registers only the former and leaves the rest null — the
/// shape the sharded drivers use; the engine null-checks the
/// partition-dependent pointers on the hot path.
struct EngineMetrics {
  // Logical, shard-mergeable.
  Counter* scheduled = nullptr;    ///< events accepted by schedule_at/after
  Counter* cancelled = nullptr;    ///< successful cancels
  Counter* fired = nullptr;        ///< events executed
  // Partition-dependent (serial-only).
  Counter* compactions = nullptr;  ///< heap rebuilds dropping stale entries
  Gauge* heap = nullptr;           ///< heap entries held (incl. stale)
  Gauge* live = nullptr;           ///< live (pending) events

  static EngineMetrics bind(Registry& r);
  /// Logical counters only; partition-dependent members stay null.
  static EngineMetrics bind_logical(Registry& r);
};

/// Typed wiring bundle for `bgp::BgpRouter` (shared by all routers of a
/// network — the counts aggregate).
///
/// `sends`/`withdrawals`/`mrai_deferrals` are logical counters (each wire
/// event counted on exactly one router, hence one shard) and merge exactly
/// across shard counts; the gauges record instantaneous levels whose
/// high-water marks depend on the partition, so `bind_logical` leaves them
/// null and the router null-checks `pending` on the hot path.
struct RouterMetrics {
  // Logical, shard-mergeable.
  Counter* sends = nullptr;           ///< updates put on the wire
  Counter* withdrawals = nullptr;     ///< subset of sends that withdraw
  Counter* mrai_deferrals = nullptr;  ///< flush attempts blocked by MRAI
  // Partition-dependent (serial-only).
  Gauge* pending = nullptr;           ///< updates held back (pending depth)
  /// Resident per-prefix RIB rows (RIB-IN + Loc-RIB + RIB-OUT) summed over
  /// all routers sharing the bundle. Sampled by the driver at reporting
  /// cadence, not maintained on the hot path; `rib_resident_peak` holds the
  /// true in-run peak recovered from the telemetry sampler grid (the plain
  /// gauge's own max only sees the instants the driver happened to set it).
  Gauge* rib_resident = nullptr;
  Gauge* rib_resident_peak = nullptr;

  static RouterMetrics bind(Registry& r);
  /// Logical counters only; the gauges stay null.
  static RouterMetrics bind_logical(Registry& r);
};

/// Typed wiring bundle for `rfd::DampingModule` (shared by all modules).
///
/// The counters are logical (each damping event happens on exactly one
/// module, hence one shard) and merge exactly; the penalty histogram sums
/// doubles in observation order (order-dependent across partitions) and the
/// occupancy gauges' high-water marks depend on the partition, so
/// `bind_logical` leaves both null and the module null-checks `penalty` on
/// the hot path.
struct DampingMetrics {
  // Logical, shard-mergeable.
  Counter* charges = nullptr;       ///< penalty increments actually applied
  Counter* suppressions = nullptr;  ///< entries crossing the cut-off
  Counter* reuses = nullptr;        ///< reuse timers fired on suppressed entries
  Counter* reschedules = nullptr;   ///< reuse timers cancelled + moved out
  // Partition-dependent (serial-only).
  Histogram* penalty = nullptr;     ///< post-charge penalty values
  /// Entry-store rows / live-penalty entries summed over all modules sharing
  /// the bundle (the latter is what the RFC 2439 memory limit bounds).
  /// Sampled by the driver at reporting cadence; the `*_peak` twins hold
  /// true in-run peaks recovered from the telemetry sampler grid.
  Gauge* tracked = nullptr;
  Gauge* tracked_peak = nullptr;
  Gauge* active = nullptr;
  Gauge* active_peak = nullptr;

  static DampingMetrics bind(Registry& r);
  /// Logical counters only; histogram and gauges stay null.
  static DampingMetrics bind_logical(Registry& r);
};

/// Typed wiring bundle for the damping-phase timeline recorder (one per
/// run): per-phase occupancy histograms (interval durations in seconds)
/// plus the interval count, filled from the finalized timeline.
struct PhaseMetrics {
  Histogram* charging = nullptr;     ///< charging interval durations (s)
  Histogram* suppression = nullptr;  ///< suppression interval durations (s)
  Histogram* releasing = nullptr;    ///< releasing interval durations (s)
  Counter* intervals = nullptr;      ///< total timeline intervals recorded

  static PhaseMetrics bind(Registry& r);
};

/// Typed wiring bundle for `fault::FaultInjector` (one per run).
struct FaultMetrics {
  Counter* injected = nullptr;       ///< fault events applied
  Counter* link_downs = nullptr;     ///< links actually taken down
  Counter* link_ups = nullptr;       ///< links actually restored
  Counter* restarts = nullptr;       ///< router restarts (RIB + damping flush)
  Counter* perturb_drops = nullptr;  ///< messages dropped by perturbation
  Counter* perturb_delays = nullptr; ///< messages given extra delay
  Gauge* held_links = nullptr;       ///< links currently held down by faults

  static FaultMetrics bind(Registry& r);
};

/// Typed wiring bundle for the streaming stability analytics
/// (`obs::StabilityTracker`): update-train counts, scores and shape
/// histograms, filled once at end of run from the finalized (and, under
/// sharding, merged) `StabilityReport`. Every figure is a pure integer
/// accumulation or a ratio of integers, so — unlike the other bundles —
/// this one is legal in sharded runs and byte-identical at any shard count.
struct StabilityMetrics {
  Counter* updates = nullptr;      ///< updates observed at send instants
  Counter* withdrawals = nullptr;  ///< subset that withdraw
  Counter* trains = nullptr;       ///< update trains closed
  Counter* singletons = nullptr;   ///< trains of exactly one update
  Counter* suppressions = nullptr; ///< damping suppressions folded per key
  Counter* reuses = nullptr;       ///< reuse fires folded per key
  Gauge* keys = nullptr;           ///< distinct (from,to,prefix) detectors
  Gauge* max_train_len = nullptr;  ///< longest train seen (updates)
  Gauge* score_ppm = nullptr;      ///< stability score, parts-per-million
  Histogram* train_len = nullptr;       ///< train lengths (updates)
  Histogram* train_duration = nullptr;  ///< train durations (s)
  Histogram* intra_arrival = nullptr;   ///< within-train inter-arrivals (s)

  static StabilityMetrics bind(Registry& r);

  /// Fills the bundle from a finalized report (canonical fold order).
  void record(const struct StabilityReport& report) const;
};

/// Typed wiring bundle for the what-if daemon (`svc::Service`): job-flow
/// counters plus instantaneous queue/execution gauges. Counters and gauges
/// are not thread-safe on their own; the service mutates the whole bundle
/// under its state mutex. Volatile by nature (arrival order, cache state),
/// so these figures feed the status line and `status` responses, never a
/// deterministic artifact.
struct SvcMetrics {
  Counter* accepted = nullptr;      ///< jobs admitted to the queue
  Counter* completed = nullptr;     ///< jobs finished successfully
  Counter* failed = nullptr;        ///< jobs that threw in the driver
  Counter* cache_hits = nullptr;    ///< responses served from the LRU cache
  Counter* coalesced = nullptr;     ///< submissions joined onto an in-flight twin
  Counter* rejected_full = nullptr;      ///< 429s: bounded queue at capacity
  Counter* rejected_draining = nullptr;  ///< 503s: submitted during drain
  Gauge* queue_depth = nullptr;     ///< jobs queued, not yet dispatched
  Gauge* running = nullptr;         ///< jobs currently executing

  static SvcMetrics bind(Registry& r);
};

/// Typed wiring bundle for `sim::ShardedEngine` runs (one per run).
/// Diagnostics only: every figure here depends on the partition and the
/// host's thread timing, so these gauges must never feed a deterministic
/// artifact (the sharded drivers keep them out of scorecards by design).
struct ShardMetrics {
  Counter* rounds = nullptr;          ///< barrier-synchronized rounds executed
  Counter* cross_posted = nullptr;    ///< messages posted to foreign inboxes
  Counter* cross_admitted = nullptr;  ///< inbox messages admitted into shards
  Gauge* shards = nullptr;            ///< shard count of the run
  Gauge* cut_links = nullptr;         ///< undirected links crossing shards
  Gauge* lookahead_us = nullptr;      ///< conservative window (microseconds)
  Gauge* barrier_wait_us = nullptr;   ///< summed barrier wait (microseconds)

  static ShardMetrics bind(Registry& r);

  /// Copies one run's figures out of the engine stats / partition.
  void record(std::uint64_t rounds_n, std::uint64_t posted,
              std::uint64_t admitted, int shard_count, std::size_t cuts,
              double lookahead_s, std::uint64_t wait_ns) const;
};

}  // namespace rfdnet::obs
