#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace rfdnet::obs {

namespace {

/// Shortest round-trip-exact decimal (max_digits10) — same formatting the
/// metric registry uses, so telemetry rows and `--metrics` exports agree.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

TelemetrySampler::TelemetrySampler(std::int64_t first_us,
                                   std::int64_t period_us)
    : first_us_(first_us), period_us_(period_us) {
  if (period_us_ <= 0) {
    throw std::invalid_argument("TelemetrySampler: period must be positive");
  }
}

void TelemetrySampler::check_open(const char* what) const {
  if (finalized_) {
    throw std::logic_error(std::string("TelemetrySampler: ") + what +
                           " after finalize");
  }
}

void TelemetrySampler::add_counter(std::string name, const Counter* c) {
  check_open("add_counter");
  if (sealed_) {
    throw std::logic_error("TelemetrySampler: registration after sampling");
  }
  Series s;
  s.name = std::move(name);
  s.counter = c;
  series_.push_back(std::move(s));
}

void TelemetrySampler::add_gauge(std::string name, const Gauge* g) {
  check_open("add_gauge");
  if (sealed_) {
    throw std::logic_error("TelemetrySampler: registration after sampling");
  }
  Series s;
  s.name = std::move(name);
  s.gauge = g;
  series_.push_back(std::move(s));
}

void TelemetrySampler::add_probe(std::string name,
                                 std::function<std::int64_t()> probe) {
  check_open("add_probe");
  if (sealed_) {
    throw std::logic_error("TelemetrySampler: registration after sampling");
  }
  Series s;
  s.name = std::move(name);
  s.probe = std::move(probe);
  series_.push_back(std::move(s));
}

void TelemetrySampler::reserve(std::size_t n_samples) {
  times_us_.reserve(n_samples);
  values_.reserve(n_samples * series_.size());
}

void TelemetrySampler::seal() {
  std::sort(series_.begin(), series_.end(),
            [](const Series& a, const Series& b) { return a.name < b.name; });
  for (std::size_t i = 1; i < series_.size(); ++i) {
    if (series_[i - 1].name == series_[i].name) {
      throw std::logic_error("TelemetrySampler: duplicate series name: " +
                             series_[i].name);
    }
  }
  sealed_ = true;
}

std::int64_t TelemetrySampler::read(const Series& s) const {
  if (s.counter != nullptr) {
    return static_cast<std::int64_t>(s.counter->value());
  }
  if (s.gauge != nullptr) return s.gauge->value();
  return s.probe();
}

void TelemetrySampler::sample(std::int64_t t_us) {
  check_open("sample");
  if (!sealed_) seal();
  if (!times_us_.empty() && t_us <= times_us_.back()) {
    throw std::logic_error(
        "TelemetrySampler: sample instants must be strictly increasing");
  }
  times_us_.push_back(t_us);
  for (const Series& s : series_) values_.push_back(read(s));
}

void TelemetrySampler::finalize() {
  if (!sealed_) seal();  // no-sample runs still get canonical series order
  finalized_ = true;
}

void TelemetrySampler::truncate_after(std::int64_t last_event_us) {
  if (!finalized_) {
    throw std::logic_error("TelemetrySampler: truncate_after before finalize");
  }
  while (!times_us_.empty() && times_us_.back() > last_event_us) {
    times_us_.pop_back();
    values_.resize(values_.size() - series_.size());
  }
}

void TelemetrySampler::merge(const TelemetrySampler& other) {
  if (!finalized_ || !other.finalized_) {
    throw std::logic_error("TelemetrySampler: merge requires both finalized");
  }
  if (first_us_ != other.first_us_ || period_us_ != other.period_us_) {
    throw std::logic_error("TelemetrySampler: merge grid mismatch");
  }
  if (series_.size() != other.series_.size() ||
      times_us_ != other.times_us_) {
    throw std::logic_error("TelemetrySampler: merge shape mismatch");
  }
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name != other.series_[i].name) {
      throw std::logic_error("TelemetrySampler: merge series name mismatch");
    }
  }
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += other.values_[i];
  }
}

std::size_t TelemetrySampler::series_index(const std::string& name) const {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return i;
  }
  return series_.size();
}

std::int64_t TelemetrySampler::last(const std::string& name) const {
  const std::size_t j = series_index(name);
  if (j == series_.size() || times_us_.empty()) return 0;
  return values_[(times_us_.size() - 1) * series_.size() + j];
}

std::int64_t TelemetrySampler::peak(const std::string& name) const {
  const std::size_t j = series_index(name);
  if (j == series_.size()) return 0;
  std::int64_t best = 0;
  for (std::size_t i = 0; i < times_us_.size(); ++i) {
    best = std::max(best, values_[i * series_.size() + j]);
  }
  return best;
}

void TelemetrySampler::write_jsonl(std::ostream& os) const {
  for (std::size_t i = 0; i < times_us_.size(); ++i) {
    const std::string t =
        fmt_double(static_cast<double>(times_us_[i]) / 1e6);
    for (std::size_t j = 0; j < series_.size(); ++j) {
      os << "{\"t\":" << t << ",\"name\":\"" << series_[j].name
         << "\",\"value\":"
         << fmt_double(
                static_cast<double>(values_[i * series_.size() + j]))
         << "}\n";
    }
  }
}

std::string TelemetrySampler::jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

std::string TelemetrySampler::summary_json() const {
  std::ostringstream os;
  os << "{\"period_s\":"
     << fmt_double(static_cast<double>(period_us_) / 1e6) << ",\"first_s\":"
     << fmt_double(static_cast<double>(first_us_) / 1e6)
     << ",\"samples\":" << times_us_.size() << ",\"series\":{";
  for (std::size_t j = 0; j < series_.size(); ++j) {
    os << (j ? "," : "") << '"' << series_[j].name << "\":{\"last\":"
       << last(series_[j].name) << ",\"peak\":" << peak(series_[j].name)
       << '}';
  }
  os << "}}";
  return os.str();
}

Heartbeat::Heartbeat(double period_s)
    : period_s_(period_s),
      next_(std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(period_s))) {}

bool Heartbeat::due() {
  const auto now = std::chrono::steady_clock::now();
  if (now < next_) return false;
  next_ = now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(period_s_));
  return true;
}

}  // namespace rfdnet::obs
