#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace rfdnet::obs {

class Counter;
class Gauge;

/// Deterministic sim-time metric sampler: snapshots a registered set of
/// counters, gauges and probe callbacks at fixed simulated-time instants
/// (t0 + period, t0 + 2*period, ...) and renders the series as JSONL rows
/// `{"t":..,"name":..,"value":..}` in canonical name order at %.17g.
///
/// Every stored cell is an integer (counter values, gauge levels, probe
/// results), so the artifact is a pure function of the event sequence: two
/// runs sampling the same logical state at the same instants produce
/// byte-identical JSONL. Sharded runs keep one sampler per shard over the
/// same grid and `merge` them — per-cell integer addition — which is exact
/// for logical counters (each event counted on exactly one shard) and for
/// instantaneous level probes (per-shard sums add to the global level).
/// Partition-dependent figures (heap occupancy, gauge high-water marks,
/// float histograms) must not be registered in sharded runs; the drivers
/// enforce that split via the `bind_logical` metric bundles.
///
/// Allocation discipline: `reserve` preallocates the row storage, series
/// registration happens at wiring time, and the series order is sealed
/// (sorted once, in place) on the first `sample` — steady-state sampling is
/// allocation-free, the property the telemetry property suite pins down.
class TelemetrySampler {
 public:
  /// Grid `first_us + k * period_us` for k = 0, 1, ... (integer
  /// microseconds; `period_us` must be > 0).
  TelemetrySampler(std::int64_t first_us, std::int64_t period_us);

  /// Registers one series. Legal only before the first `sample`
  /// (`std::logic_error` afterwards); duplicate names throw.
  void add_counter(std::string name, const Counter* c);
  void add_gauge(std::string name, const Gauge* g);
  /// Probe callbacks cover figures no component maintains continuously
  /// (RIB residency, damping entry-store occupancy): invoked at each sample
  /// instant, they must return the instantaneous level as an integer.
  void add_probe(std::string name, std::function<std::int64_t()> probe);

  /// Preallocates storage for `n_samples` rows (steady-state sampling then
  /// allocates nothing until the reservation is exhausted).
  void reserve(std::size_t n_samples);

  /// Records one row at simulated instant `t_us`: reads every series in
  /// canonical name order. Instants must be strictly increasing; sampling
  /// after `finalize` throws `std::logic_error`.
  void sample(std::int64_t t_us);

  /// Seals the sampler. Idempotent; `sample` afterwards throws.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Drops rows strictly after `last_event_us` (requires `finalize`).
  /// Sharded runs can sample trailing grid instants inside the final
  /// conservative window that the serial run never reaches; truncating both
  /// at the globally-last executed event makes the emission set
  /// partition-independent.
  void truncate_after(std::int64_t last_event_us);

  /// Per-cell integer addition of another sampler's rows into this one.
  /// Both must be finalized with identical grids, sample times and series
  /// names (`std::logic_error` otherwise — merging an unfinalized sampler
  /// is a misuse the property suite pins).
  void merge(const TelemetrySampler& other);

  std::int64_t first_us() const { return first_us_; }
  std::int64_t period_us() const { return period_us_; }
  std::size_t series_count() const { return series_.size(); }
  std::size_t sample_count() const { return times_us_.size(); }

  /// Last recorded value / maximum over all rows of series `name`
  /// (0 when the series is unknown or no rows were recorded). `peak` is how
  /// the drivers recover true in-run damping/residency peaks that the
  /// end-of-run gauge snapshot cannot see.
  std::int64_t last(const std::string& name) const;
  std::int64_t peak(const std::string& name) const;

  /// One `{"t":..,"name":..,"value":..}` object per line, rows in time
  /// order, series in name order within a row, numbers at %.17g.
  void write_jsonl(std::ostream& os) const;
  std::string jsonl() const;

  /// Compact end-of-run summary for `--json` exports and scorecard-adjacent
  /// reports: `{"period_s":..,"first_s":..,"samples":N,
  /// "series":{name:{"last":..,"peak":..},..}}`.
  std::string summary_json() const;

 private:
  struct Series {
    std::string name;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    std::function<std::int64_t()> probe;
  };

  void check_open(const char* what) const;
  void seal();
  std::int64_t read(const Series& s) const;
  std::size_t series_index(const std::string& name) const;

  std::int64_t first_us_;
  std::int64_t period_us_;
  std::vector<Series> series_;
  bool sealed_ = false;
  bool finalized_ = false;
  std::vector<std::int64_t> times_us_;
  /// Row-major `sample_count() x series_count()` cell matrix.
  std::vector<std::int64_t> values_;
};

/// Wall-clock rate limiter behind `--heartbeat`: `due()` returns true at
/// most once per period. Heartbeat output is volatile by construction
/// (wall-clock rates, barrier waits) and goes to stderr only — never into a
/// deterministic artifact.
class Heartbeat {
 public:
  explicit Heartbeat(double period_s);

  /// True when at least one period elapsed since the last true return.
  bool due();

  double period_s() const { return period_s_; }

 private:
  double period_s_;
  std::chrono::steady_clock::time_point next_;
};

}  // namespace rfdnet::obs
