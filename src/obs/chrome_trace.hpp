#pragma once

#include <iosfwd>
#include <vector>

#include "obs/phase_timeline.hpp"
#include "obs/span.hpp"

namespace rfdnet::obs {

/// Writes one run's causal spans and damping-phase timelines as a Chrome
/// trace-event JSON object (`{"traceEvents":[...]}`), loadable as-is in
/// Perfetto (ui.perfetto.dev) or chrome://tracing.
///
/// Layout: one "process" per router (pid = node id). Track 0 of each router
/// holds its causal spans (sends, MRAI deferrals, suppressions, reuses, and
/// the root flap/fault instants), one further track per (peer, prefix) pair
/// holds that entry's phase timeline. Span events carry
/// `args: {trace, span, parent}`, so the causal tree is reconstructible
/// from the exported file alone.
///
/// All timestamps are integer microseconds derived from the simulator's
/// integer clock and every collection is emitted in sorted order, so equal
/// inputs produce byte-identical files. Open spans must be closed
/// (`SpanTracer::close_open`) before exporting.
void write_chrome_trace(std::ostream& os, const std::vector<SpanRecord>& spans,
                        const std::vector<PhaseInterval>& phases);

}  // namespace rfdnet::obs
