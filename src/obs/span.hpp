#pragma once

#include <cstdint>
#include <vector>

namespace rfdnet::obs {

/// Causal identity carried by an in-flight BGP update (and stored by
/// stateful machinery like suppression entries). `trace_id` names the causal
/// tree — one per root cause (origin flap, fault injection) — and
/// `span_id`/`parent_span_id` locate this hop in it. A default-constructed
/// context (all zeros) means "untraced"; plain scalars so the struct can ride
/// on `bgp::UpdateMessage` without pulling anything above the obs layer in.
struct SpanContext {
  std::uint32_t trace_id = 0;
  std::uint32_t span_id = 0;         ///< 0 = no span
  std::uint32_t parent_span_id = 0;  ///< 0 = root of its trace

  bool valid() const { return span_id != 0; }

  friend bool operator==(const SpanContext&, const SpanContext&) = default;
};

/// One node of a causal tree. Interval spans (suppression, MRAI deferral,
/// an update's time on the wire) are opened with `t1_s < 0` and closed
/// later; instant spans (a flap, a reuse firing) carry `t1_s == t0_s`.
struct SpanRecord {
  std::uint32_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_span_id = 0;
  const char* kind = "";  ///< string literal ("flap.withdraw", "rfd.suppress", ...)
  double t0_s = 0.0;
  double t1_s = -1.0;  ///< < 0 while the span is still open
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint32_t prefix = 0;

  bool open() const { return t1_s < t0_s; }
};

/// Mints span ids and records the causal tree of one simulation run.
///
/// Ids are sequential (span n is `records()[n-1]`), so a single-threaded run
/// — every run is; parallelism lives across trials — produces the same ids
/// for the same event sequence, and every artifact derived from the records
/// is byte-deterministic.
///
/// The *active-context stack* carries causality through callbacks that have
/// no message to ride on: a router pushes the delivered update's span while
/// processing it, a damping module pushes the reuse span while re-running
/// the decision process, and anything that emits in between parents its
/// spans on `active()`. `child()` with an invalid parent records nothing and
/// returns an invalid context, so untraced activity (e.g. warm-up
/// convergence) stays span-free for free.
class SpanTracer {
 public:
  /// Mints a new trace with an instant root span (t1 = t0).
  SpanContext root(const char* kind, double t_s, std::uint32_t node,
                   std::uint32_t peer, std::uint32_t prefix);

  /// Opens an interval span under `parent` (same trace). Invalid parent:
  /// no-op returning an invalid context.
  SpanContext child(const SpanContext& parent, const char* kind, double t_s,
                    std::uint32_t node, std::uint32_t peer,
                    std::uint32_t prefix);

  /// Records an instant child span (already closed, t1 = t0).
  SpanContext child_instant(const SpanContext& parent, const char* kind,
                            double t_s, std::uint32_t node, std::uint32_t peer,
                            std::uint32_t prefix);

  /// Closes an open interval span. Invalid/foreign contexts and
  /// already-closed spans are ignored.
  void close(const SpanContext& sc, double t1_s);

  /// Closes every span still open (end-of-run sweep: suppressions that never
  /// reused, updates dropped without a drop notification).
  void close_open(double t1_s);

  void push_active(const SpanContext& sc) { active_.push_back(sc); }
  void pop_active() { active_.pop_back(); }
  /// Innermost active context, or an invalid context when none is.
  SpanContext active() const {
    return active_.empty() ? SpanContext{} : active_.back();
  }

  /// All spans in id order (span n at index n - 1).
  const std::vector<SpanRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

 private:
  std::vector<SpanRecord> records_;
  std::vector<SpanContext> active_;
  std::uint32_t next_trace_ = 0;
};

/// RAII active-context guard: pushes `sc` on construction when it is valid
/// (and a tracer is attached), pops on destruction.
class ActiveSpan {
 public:
  ActiveSpan(SpanTracer* tracer, const SpanContext& sc)
      : tracer_(sc.valid() ? tracer : nullptr) {
    if (tracer_) tracer_->push_active(sc);
  }
  ~ActiveSpan() {
    if (tracer_) tracer_->pop_active();
  }
  ActiveSpan(const ActiveSpan&) = delete;
  ActiveSpan& operator=(const ActiveSpan&) = delete;

 private:
  SpanTracer* tracer_;
};

}  // namespace rfdnet::obs
