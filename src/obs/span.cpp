#include "obs/span.hpp"

namespace rfdnet::obs {

SpanContext SpanTracer::root(const char* kind, double t_s, std::uint32_t node,
                             std::uint32_t peer, std::uint32_t prefix) {
  SpanRecord r;
  r.trace_id = ++next_trace_;
  r.span_id = static_cast<std::uint32_t>(records_.size()) + 1;
  r.parent_span_id = 0;
  r.kind = kind;
  r.t0_s = t_s;
  r.t1_s = t_s;
  r.node = node;
  r.peer = peer;
  r.prefix = prefix;
  records_.push_back(r);
  return SpanContext{r.trace_id, r.span_id, 0};
}

SpanContext SpanTracer::child(const SpanContext& parent, const char* kind,
                              double t_s, std::uint32_t node,
                              std::uint32_t peer, std::uint32_t prefix) {
  if (!parent.valid()) return SpanContext{};
  SpanRecord r;
  r.trace_id = parent.trace_id;
  r.span_id = static_cast<std::uint32_t>(records_.size()) + 1;
  r.parent_span_id = parent.span_id;
  r.kind = kind;
  r.t0_s = t_s;
  r.t1_s = -1.0;  // open
  r.node = node;
  r.peer = peer;
  r.prefix = prefix;
  records_.push_back(r);
  return SpanContext{r.trace_id, r.span_id, r.parent_span_id};
}

SpanContext SpanTracer::child_instant(const SpanContext& parent,
                                      const char* kind, double t_s,
                                      std::uint32_t node, std::uint32_t peer,
                                      std::uint32_t prefix) {
  const SpanContext sc = child(parent, kind, t_s, node, peer, prefix);
  if (sc.valid()) records_[sc.span_id - 1].t1_s = t_s;
  return sc;
}

void SpanTracer::close(const SpanContext& sc, double t1_s) {
  if (!sc.valid() || sc.span_id > records_.size()) return;
  SpanRecord& r = records_[sc.span_id - 1];
  if (!r.open()) return;
  r.t1_s = t1_s < r.t0_s ? r.t0_s : t1_s;
}

void SpanTracer::close_open(double t1_s) {
  for (SpanRecord& r : records_) {
    if (r.open()) r.t1_s = t1_s < r.t0_s ? r.t0_s : t1_s;
  }
}

}  // namespace rfdnet::obs
