#include "bgp/network.hpp"

#include <stdexcept>

namespace rfdnet::bgp {

BgpNetwork::BgpNetwork(const net::Graph& graph, const TimingConfig& cfg,
                       const Policy& policy, sim::Engine& engine,
                       sim::Rng& rng, Observer* observer,
                       RibBackendKind rib_backend)
    : graph_(graph), engine_(engine), rng_(rng), cfg_(cfg), observer_(observer) {
  cfg.validate();
  routers_.reserve(graph.node_count());
  for (net::NodeId u = 0; u < graph.node_count(); ++u) {
    std::vector<BgpRouter::PeerInfo> peers;
    peers.reserve(graph.degree(u));
    for (const auto& e : graph.neighbors(u)) {
      peers.push_back(BgpRouter::PeerInfo{e.neighbor, e.rel});
    }
    routers_.push_back(std::make_unique<BgpRouter>(
        u, std::move(peers), cfg, policy, engine, rng,
        [this](net::NodeId from, net::NodeId to, const UpdateMessage& msg) {
          transmit(from, to, msg);
        },
        observer, rib_backend));
  }
  // Pre-build the per-directed-link wire records. LinkState entries are
  // created up front so the Wire pointers stay valid for the network's
  // lifetime (node-based map: addresses are stable).
  for (net::NodeId u = 0; u < graph.node_count(); ++u) {
    for (const auto& e : graph.neighbors(u)) {
      LinkState& state = link_state_[undirected_key(u, e.neighbor)];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(u) << 32) | e.neighbor;
      wires_.emplace(key, Wire{e.delay_s, &state, sim::SimTime::zero()});
    }
  }
}

void BgpNetwork::transmit(net::NodeId from, net::NodeId to,
                          const UpdateMessage& msg) {
  Wire& wire =
      wires_.find((static_cast<std::uint64_t>(from) << 32) | to)->second;
  if (!wire.state->up) {
    ++dropped_;
    if (observer_) observer_->on_drop(from, to, msg, engine_.now());
    if (spans_) spans_->close(msg.span, engine_.now().as_seconds());
    return;
  }

  double extra = 0.0;
  if (perturb_) {
    const Perturbation p = perturb_(from, to);
    if (p.drop) {
      ++dropped_;
      if (observer_) observer_->on_drop(from, to, msg, engine_.now());
      if (spans_) spans_->close(msg.span, engine_.now().as_seconds());
      return;
    }
    extra = p.extra_delay_s;
  }

  const double proc = rng_.uniform(cfg_.proc_delay_min_s, cfg_.proc_delay_max_s);
  sim::SimTime when =
      engine_.now() + sim::Duration::seconds(wire.delay_s + proc + extra);
  // Enforce the FIFO clamp (see `Wire::clear`): a reordered withdrawal would
  // leave a permanently stale route behind.
  if (when < wire.clear) when = wire.clear;
  wire.clear = when + sim::Duration::micros(1);
  // Park the message in a pooled slot: the sender's buffer may be reused,
  // and the delivery closure then carries only the slot index — small enough
  // to sit in std::function's inline buffer, so scheduling a send allocates
  // nothing. A message from an earlier session incarnation is lost if the
  // link flapped while it was in flight (epoch check at delivery).
  const std::uint32_t slot = pool_.acquire();
  UpdateMessagePool::Slot& parked = pool_.at(slot);
  parked.msg = msg;
  parked.from = from;
  parked.to = to;
  parked.epoch = wire.state->epoch;
  engine_.schedule_at(when, [this, slot] { deliver_pooled(slot); },
                      sim::EventKind::kDelivery);
}

void BgpNetwork::deliver_pooled(std::uint32_t slot) {
  // Deque-backed slots have stable addresses, so this reference survives the
  // re-entrant transmits (and pool acquires) the delivery triggers.
  const UpdateMessagePool::Slot& parked = pool_.at(slot);
  const LinkState& state =
      *wires_
           .find((static_cast<std::uint64_t>(parked.from) << 32) | parked.to)
           ->second.state;
  if (!state.up || state.epoch != parked.epoch) {
    ++dropped_;
    if (observer_) {
      observer_->on_drop(parked.from, parked.to, parked.msg, engine_.now());
    }
    if (spans_) spans_->close(parked.msg.span, engine_.now().as_seconds());
    pool_.release(slot);
    return;
  }
  ++delivered_;
  routers_[parked.to]->deliver(parked.from, parked.msg);
  pool_.release(slot);
}

void BgpNetwork::set_link(net::NodeId u, net::NodeId v, bool up) {
  if (!graph_.has_link(u, v)) {
    throw std::invalid_argument("BgpNetwork: no such link");
  }
  LinkState& state = link_state_[undirected_key(u, v)];
  if (state.up == up) return;
  state.up = up;
  ++state.epoch;

  // Each endpoint detects the change on its own side and tags the updates
  // it emits with a root cause for its direction of the link (§6.1).
  const auto rc_for = [this, up](net::NodeId self, net::NodeId other) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(self) << 32) | other;
    auto [it, inserted] =
        rc_sources_.try_emplace(key, rcn::RootCauseSource{self, other});
    return it->second.next(up);
  };
  BgpRouter& ru = *routers_[u];
  BgpRouter& rv = *routers_[v];
  const int slot_uv = ru.peer_slot(v);
  const int slot_vu = rv.peer_slot(u);
  if (up) {
    ru.session_up(slot_uv, rc_for(u, v));
    rv.session_up(slot_vu, rc_for(v, u));
  } else {
    ru.session_down(slot_uv, rc_for(u, v));
    rv.session_down(slot_vu, rc_for(v, u));
  }
}

bool BgpNetwork::link_is_up(net::NodeId u, net::NodeId v) const {
  if (!graph_.has_link(u, v)) {
    throw std::invalid_argument("BgpNetwork: no such link");
  }
  const auto it = link_state_.find(undirected_key(u, v));
  return it == link_state_.end() || it->second.up;
}

bool BgpNetwork::all_reachable(Prefix p) const {
  for (const auto& r : routers_) {
    if (!r->best(p)) return false;
  }
  return true;
}

bool BgpNetwork::none_reachable(Prefix p) const {
  for (const auto& r : routers_) {
    if (r->best(p)) return false;
  }
  return true;
}

}  // namespace rfdnet::bgp
