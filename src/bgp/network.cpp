#include "bgp/network.hpp"

#include <stdexcept>

namespace rfdnet::bgp {

BgpNetwork::BgpNetwork(const net::Graph& graph, const TimingConfig& cfg,
                       const Policy& policy, sim::Engine& engine,
                       sim::Rng& rng, Observer* observer)
    : graph_(graph), engine_(engine), rng_(rng), cfg_(cfg), observer_(observer) {
  cfg.validate();
  routers_.reserve(graph.node_count());
  for (net::NodeId u = 0; u < graph.node_count(); ++u) {
    std::vector<BgpRouter::PeerInfo> peers;
    peers.reserve(graph.degree(u));
    for (const auto& e : graph.neighbors(u)) {
      peers.push_back(BgpRouter::PeerInfo{e.neighbor, e.rel});
    }
    routers_.push_back(std::make_unique<BgpRouter>(
        u, std::move(peers), cfg, policy, engine, rng,
        [this](net::NodeId from, net::NodeId to, const UpdateMessage& msg) {
          transmit(from, to, msg);
        },
        observer));
  }
}

void BgpNetwork::transmit(net::NodeId from, net::NodeId to,
                          const UpdateMessage& msg) {
  const auto state_it = link_state_.find(undirected_key(from, to));
  const std::uint64_t epoch =
      state_it == link_state_.end() ? 0 : state_it->second.epoch;
  if (state_it != link_state_.end() && !state_it->second.up) {
    ++dropped_;
    if (observer_) observer_->on_drop(from, to, msg, engine_.now());
    if (spans_) spans_->close(msg.span, engine_.now().as_seconds());
    return;
  }

  double extra = 0.0;
  if (perturb_) {
    const Perturbation p = perturb_(from, to);
    if (p.drop) {
      ++dropped_;
      if (observer_) observer_->on_drop(from, to, msg, engine_.now());
      if (spans_) spans_->close(msg.span, engine_.now().as_seconds());
      return;
    }
    extra = p.extra_delay_s;
  }

  const double link_delay = graph_.endpoint(from, to).delay_s;
  const double proc = rng_.uniform(cfg_.proc_delay_min_s, cfg_.proc_delay_max_s);
  sim::SimTime when =
      engine_.now() + sim::Duration::seconds(link_delay + proc + extra);
  // BGP runs over TCP: a later update must never overtake an earlier one on
  // the same session, or a reordered withdrawal would leave a permanently
  // stale route behind.
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  sim::SimTime& clear = link_clear_[key];
  if (when < clear) when = clear;
  clear = when + sim::Duration::micros(1);
  // Copy the message into the event: the sender's buffer may be reused. A
  // message from an earlier session incarnation is lost if the link flapped
  // while it was in flight.
  engine_.schedule_at(
      when,
      [this, from, to, msg, epoch] {
        const auto it = link_state_.find(undirected_key(from, to));
        const bool alive = it == link_state_.end() ||
                           (it->second.up && it->second.epoch == epoch);
        if (!alive) {
          ++dropped_;
          if (observer_) observer_->on_drop(from, to, msg, engine_.now());
          if (spans_) spans_->close(msg.span, engine_.now().as_seconds());
          return;
        }
        ++delivered_;
        routers_[to]->deliver(from, msg);
      },
      sim::EventKind::kDelivery);
}

void BgpNetwork::set_link(net::NodeId u, net::NodeId v, bool up) {
  if (!graph_.has_link(u, v)) {
    throw std::invalid_argument("BgpNetwork: no such link");
  }
  LinkState& state = link_state_[undirected_key(u, v)];
  if (state.up == up) return;
  state.up = up;
  ++state.epoch;

  // Each endpoint detects the change on its own side and tags the updates
  // it emits with a root cause for its direction of the link (§6.1).
  const auto rc_for = [this, up](net::NodeId self, net::NodeId other) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(self) << 32) | other;
    auto [it, inserted] =
        rc_sources_.try_emplace(key, rcn::RootCauseSource{self, other});
    return it->second.next(up);
  };
  BgpRouter& ru = *routers_[u];
  BgpRouter& rv = *routers_[v];
  const int slot_uv = ru.peer_slot(v);
  const int slot_vu = rv.peer_slot(u);
  if (up) {
    ru.session_up(slot_uv, rc_for(u, v));
    rv.session_up(slot_vu, rc_for(v, u));
  } else {
    ru.session_down(slot_uv, rc_for(u, v));
    rv.session_down(slot_vu, rc_for(v, u));
  }
}

bool BgpNetwork::link_is_up(net::NodeId u, net::NodeId v) const {
  if (!graph_.has_link(u, v)) {
    throw std::invalid_argument("BgpNetwork: no such link");
  }
  const auto it = link_state_.find(undirected_key(u, v));
  return it == link_state_.end() || it->second.up;
}

bool BgpNetwork::all_reachable(Prefix p) const {
  for (const auto& r : routers_) {
    if (!r->best(p)) return false;
  }
  return true;
}

bool BgpNetwork::none_reachable(Prefix p) const {
  for (const auto& r : routers_) {
    if (r->best(p)) return false;
  }
  return true;
}

}  // namespace rfdnet::bgp
