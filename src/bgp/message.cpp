#include "bgp/message.hpp"

namespace rfdnet::bgp {

std::string to_string(UpdateKind k) {
  return k == UpdateKind::kAnnouncement ? "A" : "W";
}

std::string to_string(RelPref p) {
  switch (p) {
    case RelPref::kBetter:
      return "better";
    case RelPref::kEqual:
      return "equal";
    case RelPref::kWorse:
      return "worse";
  }
  return "?";
}

std::string UpdateMessage::to_string() const {
  std::string s = bgp::to_string(kind) + " p" + std::to_string(prefix);
  if (route) s += " " + route->to_string();
  if (rc) s += " rc=" + rc->to_string();
  return s;
}

}  // namespace rfdnet::bgp
