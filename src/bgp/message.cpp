#include "bgp/message.hpp"

#include <algorithm>

namespace rfdnet::bgp {

std::string to_string(UpdateKind k) {
  return k == UpdateKind::kAnnouncement ? "A" : "W";
}

std::string to_string(RelPref p) {
  switch (p) {
    case RelPref::kBetter:
      return "better";
    case RelPref::kEqual:
      return "equal";
    case RelPref::kWorse:
      return "worse";
  }
  return "?";
}

std::string UpdateMessage::to_string() const {
  std::string s = bgp::to_string(kind) + " p" + std::to_string(prefix);
  if (route) s += " " + route->to_string();
  if (rc) s += " rc=" + rc->to_string();
  return s;
}

std::uint32_t UpdateMessagePool::acquire() {
  ++stats_.acquired;
  ++stats_.outstanding;
  stats_.high_water = std::max(stats_.high_water, stats_.outstanding);
  if (!free_.empty()) {
    ++stats_.reused;
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void UpdateMessagePool::release(std::uint32_t idx) {
  Slot& s = slots_[idx];
  // Scrub before recycling: stale span / rc / rel_pref fields must not leak
  // into the next message parked here.
  s.msg = UpdateMessage{};
  s.from = net::kInvalidNode;
  s.to = net::kInvalidNode;
  s.epoch = 0;
  free_.push_back(idx);
  --stats_.outstanding;
}

}  // namespace rfdnet::bgp
