#include "bgp/router.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/invariant.hpp"

namespace rfdnet::bgp {

namespace {
/// Local preference carried on the wire. Not transitive across eBGP: the
/// receiver overwrites it with its own import preference, so announcements
/// are emitted with this fixed placeholder to keep duplicate detection
/// meaningful.
constexpr int kWirePref = 100;

/// Min-heap comparator for the deferred-reclaim parking lot.
struct ReclaimLater {
  bool operator()(const std::pair<sim::SimTime, Prefix>& a,
                  const std::pair<sim::SimTime, Prefix>& b) const {
    return b.first < a.first;
  }
};
}  // namespace

BgpRouter::BgpRouter(net::NodeId id, std::vector<PeerInfo> peers,
                     const TimingConfig& cfg, const Policy& policy,
                     sim::Engine& engine, sim::Rng& rng, SendFn send,
                     Observer* observer, RibBackendKind rib_backend)
    : id_(id),
      peers_(std::move(peers)),
      cfg_(cfg),
      policy_(policy),
      engine_(engine),
      rng_(rng),
      send_(std::move(send)),
      observer_(observer),
      session_open_(peers_.size(), true),
      rib_in_(rib_backend),
      loc_rib_(rib_backend),
      out_(rib_backend) {
  if (!send_) throw std::invalid_argument("BgpRouter: empty send function");
  for (int s = 0; s < static_cast<int>(peers_.size()); ++s) {
    if (peers_[s].id == id_) {
      throw std::invalid_argument("BgpRouter: cannot peer with self");
    }
    if (!slot_of_.emplace(peers_[s].id, s).second) {
      throw std::invalid_argument("BgpRouter: duplicate peer");
    }
  }
}

int BgpRouter::peer_slot(net::NodeId neighbor) const {
  const auto it = slot_of_.find(neighbor);
  return it == slot_of_.end() ? -1 : it->second;
}

BgpRouter::RibInEntry& BgpRouter::rib_in(int slot, Prefix p) {
  auto& v = rib_in_.find_or_create(p);
  if (v.empty()) v.resize(peers_.size());
  return v.at(slot);
}

const BgpRouter::RibInEntry* BgpRouter::find_rib_in(int slot, Prefix p) const {
  const auto* v = rib_in_.find(p);
  if (v == nullptr || v->empty()) return nullptr;
  return &v->at(slot);
}

BgpRouter::OutEntry& BgpRouter::out_entry(int slot, Prefix p) {
  auto& v = out_.find_or_create(p);
  if (v.empty()) v.resize(peers_.size());
  return v.at(slot);
}

BgpRouter::OutEntry* BgpRouter::find_out(int slot, Prefix p) {
  auto* v = out_.find(p);
  if (v == nullptr || v->empty()) return nullptr;
  return &v->at(slot);
}

void BgpRouter::originate(Prefix p, std::optional<rcn::RootCause> rc) {
  sweep_reclaim();
  originated_.insert(p);
  process(p, rc);
}

void BgpRouter::withdraw_origin(Prefix p, std::optional<rcn::RootCause> rc) {
  sweep_reclaim();
  originated_.erase(p);
  process(p, rc);
}

void BgpRouter::deliver(net::NodeId from, const UpdateMessage& msg) {
  sweep_reclaim();
  const int slot = peer_slot(from);
  if (slot < 0) throw std::logic_error("BgpRouter: update from non-peer");
  if (observer_) observer_->on_deliver(from, id_, msg, engine_.now());

  // Close the update's wire span at the delivery instant, then process under
  // it as the active context so derived spans parent on this hop.
  if (spans_) spans_->close(msg.span, engine_.now().as_seconds());
  const obs::ActiveSpan span_guard(spans_, msg.span);

  // Import processing: AS-path loop detection turns the announcement into an
  // implicit withdrawal; surviving announcements get this router's import
  // preference.
  UpdateMessage eff = msg;
  bool loop_denied = false;
  if (eff.is_announcement() && eff.route->path.contains(id_)) {
    eff = UpdateMessage::withdraw(msg.prefix, msg.rc);
    loop_denied = true;
  }
  if (eff.is_announcement()) {
    eff.route->local_pref = policy_.import_pref(peers_[slot].rel);
  }

  RibInEntry& entry = rib_in(slot, eff.prefix);
  // Damping sees every received update, classified against the entry's
  // previous contents (RFC 2439; paper Fig. 2).
  if (damper_) damper_->on_update(slot, eff, entry.route, loop_denied);
  entry.route = eff.route;
  entry.rc = eff.rc;

  process(eff.prefix, eff.rc);
}

void BgpRouter::session_down(int slot, std::optional<rcn::RootCause> rc) {
  if (slot < 0 || slot >= static_cast<int>(peers_.size())) {
    throw std::invalid_argument("BgpRouter: bad peer slot");
  }
  sweep_reclaim();
  // Close the session first: the decision-process runs triggered below must
  // not advance RIB-OUT state toward the dead peer (see `session_open`).
  session_open_.at(slot) = false;
  // All routes learned on the session become unfeasible. Damping sees them
  // as withdrawals (RFC 2439 keeps damping state across session resets).
  // Ordered iteration: the damping charges (and the observer/trace records
  // they emit) happen here, so the visit order must not depend on the
  // storage backend.
  std::vector<Prefix> affected;
  rib_in_.for_each_ordered([&](Prefix p, std::vector<RibInEntry>& entries) {
    if (entries.empty()) return;
    RibInEntry& e = entries.at(slot);
    if (!e.route) return;
    const UpdateMessage implicit = UpdateMessage::withdraw(p, rc);
    if (damper_) damper_->on_update(slot, implicit, e.route, false);
    e.route.reset();
    e.rc = rc;
    affected.push_back(p);
  });

  // The peer has lost everything we ever advertised: reset RIB-OUT state
  // and any pending/rate-limit machinery for the session. `clear_pending`
  // cancels the MRAI wakeup too — resetting `mrai_ready` while the event
  // stays scheduled would leave a stale flush surviving the session churn.
  out_.for_each_ordered([&](Prefix, std::vector<OutEntry>& entries) {
    if (entries.empty()) return;
    OutEntry& oe = entries.at(slot);
    clear_pending(oe);
    oe.last_sent.reset();
    oe.mrai_ready = sim::SimTime::zero();
  });

  for (const Prefix p : affected) process(p, rc);
}

void BgpRouter::session_up(int slot, std::optional<rcn::RootCause> rc) {
  if (slot < 0 || slot >= static_cast<int>(peers_.size())) {
    throw std::invalid_argument("BgpRouter: bad peer slot");
  }
  sweep_reclaim();
  session_open_.at(slot) = true;
  // Session (re-)establishment: advertise the current best routes afresh.
  std::vector<Prefix> prefixes;
  loc_rib_.for_each([&](Prefix p, const LocRibEntry& loc) {
    if (loc.best) prefixes.push_back(p);
  });
  std::sort(prefixes.begin(), prefixes.end());
  for (const Prefix p : prefixes) {
    enqueue(slot, p, desired_for(slot, p), rc);
  }
}

bool BgpRouter::on_reuse(int slot, Prefix p) {
  sweep_reclaim();
  // The reused entry's stored RC rides on whatever updates the reuse
  // triggers (§6.2: reuse announcements carry an already-seen root cause).
  const RibInEntry* entry = find_rib_in(slot, p);
  const std::optional<rcn::RootCause> rc =
      entry ? entry->rc : std::optional<rcn::RootCause>{};
  return process(p, rc);
}

bool BgpRouter::process(Prefix p, const std::optional<rcn::RootCause>& rc) {
  // Phase 1 of the decision process: pick the best usable candidate.
  Route self_route;
  Candidate best{};
  bool have = false;
  int best_slot = kNoneSlot;
  if (originated_.contains(p)) {
    self_route = Route{AsPath::origin(id_), kWirePref};
    best = Candidate{&self_route, id_, true};
    best_slot = kSelfSlot;
    have = true;
  }
  if (const auto* in = rib_in_.find(p); in != nullptr && !in->empty()) {
    for (int s = 0; s < static_cast<int>(peers_.size()); ++s) {
      const RibInEntry& e = (*in)[s];
      if (!e.route) continue;
      if (damper_ && damper_->suppressed(s, p)) continue;
      const Candidate c{&*e.route, peers_[s].id, false};
      if (!have || policy_.better(c, best)) {
        best = c;
        best_slot = s;
        have = true;
      }
    }
  }

  LocRibEntry& loc = loc_rib_.find_or_create(p);
  const std::optional<Route> new_best =
      have ? std::optional<Route>(*best.route) : std::nullopt;
  const bool changed = (new_best != loc.best);
  const bool origin_changed = (best_slot != loc.from_slot);
  loc.best = new_best;
  loc.from_slot = best_slot;
  if (changed && observer_) {
    observer_->on_best_change(id_, p, loc.best, engine_.now());
  }
  if (!changed && !origin_changed) {
    // Even a no-op decision can be the last event for a prefix (a duplicate
    // withdrawal allocated an empty RIB-IN row above); reclaim before
    // returning so dead prefixes never accrete.
    maybe_reclaim(p);
    return false;
  }

  // Phase 3: recompute the desired RIB-OUT state for every peer. The
  // advertised route is the same for the whole fan-out, so the prepend is
  // hoisted out of the peer loop — each peer then only runs the cheap
  // per-peer filters against the shared interned path. The enqueue/flush
  // machinery suppresses no-ops and applies MRAI pacing.
  auto& out_vec = out_.find_or_create(p);
  if (out_vec.empty()) out_vec.resize(peers_.size());
  const std::optional<Route> exported =
      loc.best ? std::optional<Route>(export_route(loc)) : std::nullopt;
  for (int s = 0; s < static_cast<int>(peers_.size()); ++s) {
    if (!session_open_[s]) {
      // See `enqueue`: a closed session only gets its pending state dropped.
      clear_pending(out_vec[s]);
      continue;
    }
    enqueue_entry(out_vec[s], s, p,
                  exported ? filter_export(s, loc, *exported) : std::nullopt,
                  rc);
  }
  // A withdrawal fan-out that flushed everywhere may have left the prefix
  // fully inert; `loc`/`out_vec` are dead after this call.
  maybe_reclaim(p);
  return changed;
}

void BgpRouter::maybe_reclaim(Prefix p) { maybe_reclaim(p, engine_.now()); }

void BgpRouter::maybe_reclaim(Prefix p, sim::SimTime now) {
  if (originated_.contains(p)) return;
  if (const LocRibEntry* loc = loc_rib_.find(p); loc != nullptr && loc->best) {
    return;
  }
  if (const auto* in = rib_in_.find(p)) {
    for (const RibInEntry& e : *in) {
      if (e.route) return;
    }
  }
  sim::SimTime pacing_horizon = sim::SimTime::zero();
  if (const auto* out = out_.find(p)) {
    for (const OutEntry& oe : *out) {
      if (oe.last_sent || oe.has_pending ||
          oe.mrai_event != sim::kInvalidEvent) {
        return;
      }
      if (pacing_horizon < oe.mrai_ready) pacing_horizon = oe.mrai_ready;
    }
  }
  if (now < pacing_horizon) {
    // Everything about the prefix is inert except the MRAI rate limit, which
    // a re-announcement inside the window must still honor. Park the prefix
    // and let `sweep_reclaim` re-check it past the horizon; the guard set
    // keeps one parking slot per prefix no matter how often the decision
    // process runs meanwhile.
    if (reclaim_parked_.insert(p).second) {
      reclaim_queue_.emplace_back(pacing_horizon, p);
      std::push_heap(reclaim_queue_.begin(), reclaim_queue_.end(),
                     ReclaimLater{});
    }
    return;
  }
  rib_in_.erase(p);
  loc_rib_.erase(p);
  out_.erase(p);
}

void BgpRouter::sweep_reclaim() { sweep_reclaim(engine_.now()); }

void BgpRouter::sweep_reclaim(sim::SimTime now) {
  while (!reclaim_queue_.empty() && !(now < reclaim_queue_.front().first)) {
    const Prefix p = reclaim_queue_.front().second;
    std::pop_heap(reclaim_queue_.begin(), reclaim_queue_.end(),
                  ReclaimLater{});
    reclaim_queue_.pop_back();
    reclaim_parked_.erase(p);
    // Re-evaluates from scratch: the prefix may have come alive again since
    // parking (then this is a no-op) or picked up a later horizon (then it
    // re-parks itself, judged at `now`).
    maybe_reclaim(p, now);
  }
}

std::optional<Route> BgpRouter::desired_for(int slot, Prefix p) const {
  const LocRibEntry* loc = loc_rib_.find(p);
  if (loc == nullptr || !loc->best) return std::nullopt;
  return filter_export(slot, *loc, export_route(*loc));
}

Route BgpRouter::export_route(const LocRibEntry& loc) const {
  // Learned routes get this AS prepended; a self-originated path already
  // starts (and ends) with it.
  AsPath exported = (loc.from_slot == kSelfSlot)
                        ? loc.best->path
                        : loc.best->path.prepended(id_);
  return Route{std::move(exported), kWirePref};
}

std::optional<Route> BgpRouter::filter_export(int slot, const LocRibEntry& loc,
                                              const Route& exported) const {
  if (!cfg_.advertise_to_sender && slot == loc.from_slot) return std::nullopt;
  const std::optional<net::Relationship> from_rel =
      (loc.from_slot >= 0) ? std::optional(peers_[loc.from_slot].rel)
                           : std::nullopt;
  if (!policy_.can_export(from_rel, peers_[slot].rel)) return std::nullopt;
  if (cfg_.sender_side_loop_check &&
      exported.path.contains(peers_[slot].id)) {
    return std::nullopt;  // the peer would deny it anyway
  }
  return exported;  // the copy shares the interned path
}

void BgpRouter::note_pending(int delta, sim::SimTime t) {
  pending_depth_ += delta;
  RFDNET_INVARIANT(pending_depth_ >= 0, "router: pending depth negative");
  // Logical bundles (bind_logical) leave the partition-dependent pending
  // gauge null.
  if (metrics_ && metrics_->pending) metrics_->pending->add(delta);
  if (observer_) observer_->on_pending_change(id_, delta, t);
}

void BgpRouter::clear_pending(OutEntry& oe) {
  // With nothing left to flush, a scheduled MRAI wakeup is a stale timer:
  // cancel it instead of letting it fire into a no-op (and survive session
  // churn after `mrai_ready` was reset).
  if (oe.mrai_event != sim::kInvalidEvent) {
    engine_.cancel(oe.mrai_event);
    oe.mrai_event = sim::kInvalidEvent;
  }
  if (spans_ && oe.mrai_span.valid()) {
    // The deferral ended without a send (converged back / session churn).
    spans_->close(oe.mrai_span, engine_.now().as_seconds());
  }
  oe.mrai_span = obs::SpanContext{};
  oe.pending_parent = obs::SpanContext{};
  if (oe.has_pending) {
    oe.has_pending = false;
    oe.pending.reset();
    oe.pending_rc.reset();
    note_pending(-1, engine_.now());
  }
}

void BgpRouter::enqueue(int slot, Prefix p, std::optional<Route> desired,
                        const std::optional<rcn::RootCause>& rc) {
  if (!session_open_.at(slot)) {
    // Nothing can reach the peer, and RIB-OUT must keep recording "the peer
    // has nothing from us" (set at session_down): otherwise a route "sent"
    // into the dead session would make the session_up re-advertisement look
    // like a duplicate and strand the peer without the route. Non-creating:
    // a closed session needs no RIB-OUT state allocated.
    if (OutEntry* oe = find_out(slot, p)) clear_pending(*oe);
    return;
  }
  enqueue_entry(out_entry(slot, p), slot, p, std::move(desired), rc);
}

void BgpRouter::enqueue_entry(OutEntry& oe, int slot, Prefix p,
                              std::optional<Route> desired,
                              const std::optional<rcn::RootCause>& rc) {
  if (desired == oe.last_sent) {
    // Converged back to what the peer already has: drop any pending update.
    clear_pending(oe);
    return;
  }
  if (!oe.has_pending) {
    oe.has_pending = true;
    note_pending(+1, engine_.now());
  }
  oe.pending = std::move(desired);
  oe.pending_rc = rc;
  // The latest cause wins: a pending update overwritten by a newer decision
  // is attributed to the newer decision's span.
  if (spans_) oe.pending_parent = spans_->active();
  try_flush_entry(oe, slot, p);
}

void BgpRouter::try_flush(int slot, Prefix p) {
  try_flush_entry(out_entry(slot, p), slot, p);
}

void BgpRouter::try_flush_entry(OutEntry& oe, int slot, Prefix p) {
  if (!oe.has_pending) return;
  RFDNET_INVARIANT(session_open_.at(slot),
                   "router: pending update held for a closed session");
  const bool is_withdrawal = !oe.pending.has_value();
  const bool rate_limited =
      cfg_.mrai_s > 0 && (!is_withdrawal || cfg_.mrai_on_withdrawals);
  const sim::SimTime now = engine_.now();
  if (rate_limited && now < oe.mrai_ready) {
    if (oe.mrai_event == sim::kInvalidEvent) {
      if (metrics_) metrics_->mrai_deferrals->inc();
      if (spans_ && !oe.mrai_span.valid()) {
        oe.mrai_span =
            spans_->child(oe.pending_parent, "bgp.mrai_defer",
                          now.as_seconds(), id_, peers_[slot].id, p);
      }
      oe.mrai_event = engine_.schedule_at(
          oe.mrai_ready,
          [this, slot, p] {
            out_entry(slot, p).mrai_event = sim::kInvalidEvent;
            try_flush(slot, p);
            // A deferred withdrawal that just flushed may have been the
            // prefix's last live state.
            maybe_reclaim(p);
          },
          sim::EventKind::kMraiFlush);
    }
    return;
  }
  // Sending now (e.g. a withdrawal bypassing MRAI while an announcement was
  // deferred) satisfies whatever a scheduled wakeup would have flushed.
  if (oe.mrai_event != sim::kInvalidEvent) {
    engine_.cancel(oe.mrai_event);
    oe.mrai_event = sim::kInvalidEvent;
  }

  UpdateMessage msg =
      is_withdrawal ? UpdateMessage::withdraw(p, oe.pending_rc)
                    : UpdateMessage::announce(p, *oe.pending, oe.pending_rc);
  if (!is_withdrawal) {
    // Selective-damping attribute: rank against what this peer last heard
    // from us. With identical wire preferences the AS-path length is the
    // deciding attribute, so it is the comparison basis here too.
    if (!oe.last_sent) {
      msg.rel_pref = RelPref::kBetter;  // route appeared
    } else if (oe.pending->path.length() < oe.last_sent->path.length()) {
      msg.rel_pref = RelPref::kBetter;
    } else if (oe.pending->path.length() > oe.last_sent->path.length()) {
      msg.rel_pref = RelPref::kWorse;
    } else {
      msg.rel_pref = RelPref::kEqual;
    }
  }
  if (spans_) {
    if (oe.mrai_span.valid()) {
      // The deferral interval ends where the send begins.
      spans_->close(oe.mrai_span, now.as_seconds());
    }
    // The wire span: parent is the deferral when one happened, else the
    // causing update directly. Closed by the receiver at delivery (or by the
    // network on drop; the end-of-run sweep catches the rest).
    const obs::SpanContext parent =
        oe.mrai_span.valid() ? oe.mrai_span : oe.pending_parent;
    msg.span = spans_->child(parent, "bgp.send", now.as_seconds(), id_,
                             peers_[slot].id, p);
    oe.mrai_span = obs::SpanContext{};
    oe.pending_parent = obs::SpanContext{};
  }
  oe.last_sent = std::move(oe.pending);
  oe.pending.reset();
  oe.pending_rc.reset();
  oe.has_pending = false;
  note_pending(-1, now);

  if (rate_limited) {
    RFDNET_INVARIANT(!(now < oe.mrai_ready),
                     "router: mrai_ready would regress");
    const double jitter =
        rng_.uniform(cfg_.mrai_jitter_min, cfg_.mrai_jitter_max);
    oe.mrai_ready = now + sim::Duration::seconds(cfg_.mrai_s * jitter);
  }

  ++sent_;
  if (metrics_) {
    metrics_->sends->inc();
    if (is_withdrawal) metrics_->withdrawals->inc();
  }
  if (trace_) {
    trace_->bgp_send(now.as_seconds(), id_, peers_[slot].id, p, is_withdrawal);
  }
  if (observer_) observer_->on_send(id_, peers_[slot].id, msg, now);
  send_(id_, peers_[slot].id, msg);
}

void BgpRouter::check_invariants() const {
  int held = 0;
  out_.for_each([&](Prefix, const std::vector<OutEntry>& entries) {
    for (std::size_t s = 0; s < entries.size(); ++s) {
      const OutEntry& oe = entries[s];
      held += oe.has_pending ? 1 : 0;
      if (!session_open_.at(s)) {
        obs::check_always(!oe.has_pending,
                          "router: pending update held for a closed session");
        obs::check_always(oe.mrai_event == sim::kInvalidEvent,
                          "router: MRAI wakeup scheduled on a closed session");
      }
      if (oe.mrai_event != sim::kInvalidEvent) {
        obs::check_always(oe.has_pending,
                          "router: MRAI wakeup scheduled with nothing pending");
        obs::check_always(engine_.is_pending(oe.mrai_event),
                          "router: MRAI wakeup id is stale");
      }
    }
  });
  obs::check_always(held == pending_depth_,
                    "router: pending depth out of sync with RIB-OUT");
}

std::optional<Route> BgpRouter::best(Prefix p) const {
  const LocRibEntry* loc = loc_rib_.find(p);
  return loc == nullptr ? std::nullopt : loc->best;
}

int BgpRouter::best_slot(Prefix p) const {
  const LocRibEntry* loc = loc_rib_.find(p);
  return loc == nullptr ? kNoneSlot : loc->from_slot;
}

std::optional<Route> BgpRouter::rib_in_route(int slot, Prefix p) const {
  const RibInEntry* e = find_rib_in(slot, p);
  return e ? e->route : std::nullopt;
}

}  // namespace rfdnet::bgp
