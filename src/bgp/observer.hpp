#pragma once

#include <optional>

#include "bgp/message.hpp"
#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace rfdnet::bgp {

/// Observation hooks for everything the paper measures. All methods have
/// empty defaults so observers implement only what they need. `stats`
/// provides a recording implementation; the hooks are defined here (in the
/// bgp layer) because routers and damping modules are the emitters.
class Observer {
 public:
  virtual ~Observer() = default;

  /// An update was put on the wire from `from` to `to`.
  virtual void on_send(net::NodeId from, net::NodeId to,
                       const UpdateMessage& msg, sim::SimTime t) {
    (void)from, (void)to, (void)msg, (void)t;
  }

  /// An update arrived at `to` and is being processed.
  virtual void on_deliver(net::NodeId from, net::NodeId to,
                          const UpdateMessage& msg, sim::SimTime t) {
    (void)from, (void)to, (void)msg, (void)t;
  }

  /// An update was lost because its link/session went down in flight.
  virtual void on_drop(net::NodeId from, net::NodeId to,
                       const UpdateMessage& msg, sim::SimTime t) {
    (void)from, (void)to, (void)msg, (void)t;
  }

  /// A router's pending-output set changed: `delta` is +1 when an update is
  /// held back (MRAI) and -1 when it is sent or superseded into a no-op.
  /// Together with send/deliver this gives the exact "updates in transit or
  /// waiting to be sent" condition in the paper's phase definitions (§4.1).
  virtual void on_pending_change(net::NodeId node, int delta, sim::SimTime t) {
    (void)node, (void)delta, (void)t;
  }

  /// A router's best route (Loc-RIB entry) for `p` changed.
  virtual void on_best_change(net::NodeId node, Prefix p,
                              const std::optional<Route>& best,
                              sim::SimTime t) {
    (void)node, (void)p, (void)best, (void)t;
  }

  /// Damping penalty at `node` for the RIB-IN entry (peer, p) changed.
  virtual void on_penalty(net::NodeId node, net::NodeId peer, Prefix p,
                          double penalty, sim::SimTime t) {
    (void)node, (void)peer, (void)p, (void)penalty, (void)t;
  }

  /// `node` started suppressing the entry (peer, p).
  virtual void on_suppress(net::NodeId node, net::NodeId peer, Prefix p,
                           double penalty, sim::SimTime t) {
    (void)node, (void)peer, (void)p, (void)penalty, (void)t;
  }

  /// The reuse timer for (peer, p) fired at `node`. `noisy` is true when the
  /// reuse changed the router's best route (paper §4.2's noisy/silent).
  virtual void on_reuse(net::NodeId node, net::NodeId peer, Prefix p,
                        bool noisy, sim::SimTime t) {
    (void)node, (void)peer, (void)p, (void)noisy, (void)t;
  }
};

}  // namespace rfdnet::bgp
