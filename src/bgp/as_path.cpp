#include "bgp/as_path.hpp"

#include <algorithm>

namespace rfdnet::bgp {

AsPath AsPath::prepended(net::NodeId as) const {
  std::vector<net::NodeId> hops;
  hops.reserve(hops_.size() + 1);
  hops.push_back(as);
  hops.insert(hops.end(), hops_.begin(), hops_.end());
  return AsPath(std::move(hops));
}

bool AsPath::contains(net::NodeId as) const {
  return std::find(hops_.begin(), hops_.end(), as) != hops_.end();
}

std::string AsPath::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i) s += ' ';
    s += std::to_string(hops_[i]);
  }
  s += ']';
  return s;
}

}  // namespace rfdnet::bgp
