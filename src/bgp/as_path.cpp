#include "bgp/as_path.hpp"

#include <algorithm>

namespace rfdnet::bgp {

bool AsPath::contains_scan(net::NodeId as) const {
  const std::vector<net::NodeId>& h = *node_->hops;
  return std::find(h.begin(), h.end(), as) != h.end();
}

std::string AsPath::to_string() const {
  const std::vector<net::NodeId>& h = *node_->hops;
  std::string s = "[";
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (i) s += ' ';
    s += std::to_string(h[i]);
  }
  s += ']';
  return s;
}

}  // namespace rfdnet::bgp
