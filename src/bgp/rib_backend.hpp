#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "bgp/prefix.hpp"

namespace rfdnet::bgp {

/// Storage strategy for per-prefix RIB state (the router's RIB-IN / Loc-RIB /
/// RIB-OUT tables and the damping module's entry store). Swappable at
/// construction time, after xripd's `rib-ll` / `rib-null` vtable backends:
///
///  - kHashMap: the classic `unordered_map<Prefix, T>` — O(1) lookups,
///    unordered iteration, per-node allocation. The default.
///  - kRadix:   a fixed-stride (8-bit, 4-level) radix trie over the 32-bit
///    prefix key. Lookups are four indexed loads, iteration is in ascending
///    prefix order (aggregation-friendly), and erasing the last entry of a
///    256-wide leaf returns the whole block — dense full-table workloads
///    reclaim memory in contiguous chunks.
///  - kNull:    retains nothing. Reads miss, writes land in a scratch slot
///    that the next access recycles. A router on this backend originates and
///    delivers updates but never accumulates state — it measures the pure
///    engine/transport overhead under a workload, the floor every real
///    backend is compared against.
enum class RibBackendKind : std::uint8_t {
  kHashMap,
  kRadix,
  kNull,
};

std::string to_string(RibBackendKind k);
/// Parses "hash" / "radix" / "null" (the `--rib-backend` flag values).
std::optional<RibBackendKind> parse_rib_backend(const std::string& name);
/// All kinds, in declaration order (test/bench sweeps).
inline constexpr std::array<RibBackendKind, 3> kAllRibBackends = {
    RibBackendKind::kHashMap, RibBackendKind::kRadix, RibBackendKind::kNull};

namespace detail {

template <typename T>
class HashStore {
 public:
  T* find(Prefix p) {
    const auto it = map_.find(p);
    return it == map_.end() ? nullptr : &it->second;
  }
  const T* find(Prefix p) const {
    const auto it = map_.find(p);
    return it == map_.end() ? nullptr : &it->second;
  }
  T& find_or_create(Prefix p) { return map_[p]; }
  bool erase(Prefix p) { return map_.erase(p) > 0; }
  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [p, v] : map_) fn(p, v);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [p, v] : map_) fn(p, v);
  }
  /// Ascending-prefix visit: collects and sorts the keys first, so callers
  /// whose side effects are observable (trace records, damping charges) emit
  /// them in the same order on every backend.
  template <typename Fn>
  void for_each_ordered(Fn&& fn) {
    std::vector<Prefix> keys;
    keys.reserve(map_.size());
    for (const auto& [p, v] : map_) keys.push_back(p);
    std::sort(keys.begin(), keys.end());
    for (const Prefix p : keys) fn(p, map_.find(p)->second);
  }
  template <typename Fn>
  void for_each_ordered(Fn&& fn) const {
    std::vector<Prefix> keys;
    keys.reserve(map_.size());
    for (const auto& [p, v] : map_) keys.push_back(p);
    std::sort(keys.begin(), keys.end());
    for (const Prefix p : keys) fn(p, map_.find(p)->second);
  }

 private:
  std::unordered_map<Prefix, T> map_;
};

/// Fixed-stride radix trie node: `Level` counts the remaining 8-bit digits
/// below this node (level 0 = leaf holding 256 value slots).
template <typename T, int Level>
struct RadixNode {
  std::array<std::unique_ptr<RadixNode<T, Level - 1>>, 256> child;
  int occupied = 0;  ///< non-null children
};

template <typename T>
struct RadixNode<T, 0> {
  std::array<std::optional<T>, 256> slot;
  int occupied = 0;  ///< engaged slots
};

template <typename T>
class RadixStore {
 public:
  T* find(Prefix p) {
    RadixNode<T, 0>* leaf = walk(p);
    if (leaf == nullptr) return nullptr;
    auto& s = leaf->slot[p & 0xff];
    return s ? &*s : nullptr;
  }
  const T* find(Prefix p) const {
    return const_cast<RadixStore*>(this)->find(p);
  }

  T& find_or_create(Prefix p) {
    auto& n3 = root_.child[(p >> 24) & 0xff];
    if (!n3) {
      n3 = std::make_unique<RadixNode<T, 2>>();
      ++root_.occupied;
    }
    auto& n2 = n3->child[(p >> 16) & 0xff];
    if (!n2) {
      n2 = std::make_unique<RadixNode<T, 1>>();
      ++n3->occupied;
    }
    auto& leaf = n2->child[(p >> 8) & 0xff];
    if (!leaf) {
      leaf = std::make_unique<RadixNode<T, 0>>();
      ++n2->occupied;
    }
    auto& s = leaf->slot[p & 0xff];
    if (!s) {
      s.emplace();
      ++leaf->occupied;
      ++size_;
    }
    return *s;
  }

  bool erase(Prefix p) {
    auto& n3 = root_.child[(p >> 24) & 0xff];
    if (!n3) return false;
    auto& n2 = n3->child[(p >> 16) & 0xff];
    if (!n2) return false;
    auto& leaf = n2->child[(p >> 8) & 0xff];
    if (!leaf) return false;
    auto& s = leaf->slot[p & 0xff];
    if (!s) return false;
    s.reset();
    --size_;
    // Collapse emptied nodes bottom-up: a fully-withdrawn 256-prefix block
    // hands its whole leaf back at once.
    if (--leaf->occupied == 0) {
      leaf.reset();
      if (--n2->occupied == 0) {
        n2.reset();
        if (--n3->occupied == 0) {
          n3.reset();
          --root_.occupied;
        }
      }
    }
    return true;
  }

  std::size_t size() const { return size_; }
  void clear() {
    root_ = RadixNode<T, 3>{};
    size_ = 0;
  }

  // Trie iteration is inherently in ascending key order, so the ordered and
  // unordered visits are the same walk.
  template <typename Fn>
  void for_each(Fn&& fn) {
    walk_all(*this, fn);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk_all(*this, fn);
  }
  template <typename Fn>
  void for_each_ordered(Fn&& fn) {
    walk_all(*this, fn);
  }
  template <typename Fn>
  void for_each_ordered(Fn&& fn) const {
    walk_all(*this, fn);
  }

 private:
  RadixNode<T, 0>* walk(Prefix p) {
    auto& n3 = root_.child[(p >> 24) & 0xff];
    if (!n3) return nullptr;
    auto& n2 = n3->child[(p >> 16) & 0xff];
    if (!n2) return nullptr;
    auto& leaf = n2->child[(p >> 8) & 0xff];
    return leaf ? leaf.get() : nullptr;
  }

  template <typename Self, typename Fn>
  static void walk_all(Self& self, Fn& fn) {
    for (std::uint32_t a = 0; a < 256; ++a) {
      const auto& n3 = self.root_.child[a];
      if (!n3) continue;
      for (std::uint32_t b = 0; b < 256; ++b) {
        const auto& n2 = n3->child[b];
        if (!n2) continue;
        for (std::uint32_t c = 0; c < 256; ++c) {
          const auto& leaf = n2->child[c];
          if (!leaf) continue;
          for (std::uint32_t d = 0; d < 256; ++d) {
            auto& s = leaf->slot[d];
            if (!s) continue;
            fn(static_cast<Prefix>((a << 24) | (b << 16) | (c << 8) | d), *s);
          }
        }
      }
    }
  }

  RadixNode<T, 3> root_;
  std::size_t size_ = 0;
};

template <typename T>
class NullStore {
 public:
  T* find(Prefix) { return nullptr; }
  const T* find(Prefix) const { return nullptr; }
  /// Hands out a freshly-reset scratch slot; nothing is retained, so the
  /// next find (or find_or_create) sees none of what the caller wrote.
  T& find_or_create(Prefix) {
    scratch_ = T{};
    return scratch_;
  }
  bool erase(Prefix) { return false; }
  std::size_t size() const { return 0; }
  void clear() {}
  template <typename Fn>
  void for_each(Fn&&) {}
  template <typename Fn>
  void for_each(Fn&&) const {}
  template <typename Fn>
  void for_each_ordered(Fn&&) {}
  template <typename Fn>
  void for_each_ordered(Fn&&) const {}

 private:
  T scratch_;
};

}  // namespace detail

/// Per-prefix table with a construction-time storage backend. `T` is the
/// per-prefix value (one entry, or a per-peer-slot vector of entries).
///
/// The contract every backend honors:
///  - `find` never creates (the PR-1 "reads never allocate" guarantee);
///  - `find_or_create` returns a value-initialized `T` on first access —
///    except on the null backend, where it returns a scratch slot and the
///    table stays empty;
///  - `for_each_ordered` visits in ascending prefix order on *every* backend,
///    so observable side effects are backend-independent; plain `for_each`
///    may use whatever order the store is fastest at.
template <typename T>
class RibTable {
 public:
  explicit RibTable(RibBackendKind kind = RibBackendKind::kHashMap)
      : kind_(kind), store_(make_store(kind)) {}

  RibBackendKind kind() const { return kind_; }
  /// False on the null backend: writes are not retained, so callers that
  /// would strand bookkeeping on a scratch slot (timers, counted flags) must
  /// skip the write path entirely.
  bool retains() const { return kind_ != RibBackendKind::kNull; }

  T* find(Prefix p) {
    return std::visit([&](auto& s) { return s.find(p); }, store_);
  }
  const T* find(Prefix p) const {
    return std::visit([&](const auto& s) { return s.find(p); }, store_);
  }
  T& find_or_create(Prefix p) {
    return std::visit([&](auto& s) -> T& { return s.find_or_create(p); },
                      store_);
  }
  bool erase(Prefix p) {
    return std::visit([&](auto& s) { return s.erase(p); }, store_);
  }
  /// Resident (retained) entries; always 0 on the null backend.
  std::size_t size() const {
    return std::visit([](const auto& s) { return s.size(); }, store_);
  }
  void clear() {
    std::visit([](auto& s) { s.clear(); }, store_);
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    std::visit([&](auto& s) { s.for_each(fn); }, store_);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::visit([&](const auto& s) { s.for_each(fn); }, store_);
  }
  template <typename Fn>
  void for_each_ordered(Fn&& fn) {
    std::visit([&](auto& s) { s.for_each_ordered(fn); }, store_);
  }
  template <typename Fn>
  void for_each_ordered(Fn&& fn) const {
    std::visit([&](const auto& s) { s.for_each_ordered(fn); }, store_);
  }

 private:
  using Store = std::variant<detail::HashStore<T>, detail::RadixStore<T>,
                             detail::NullStore<T>>;

  static Store make_store(RibBackendKind kind) {
    switch (kind) {
      case RibBackendKind::kRadix:
        return Store{std::in_place_type<detail::RadixStore<T>>};
      case RibBackendKind::kNull:
        return Store{std::in_place_type<detail::NullStore<T>>};
      case RibBackendKind::kHashMap:
        break;
    }
    return Store{std::in_place_type<detail::HashStore<T>>};
  }

  RibBackendKind kind_;
  Store store_;
};

}  // namespace rfdnet::bgp
