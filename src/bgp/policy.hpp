#pragma once

#include <optional>

#include "bgp/route.hpp"
#include "net/types.hpp"

namespace rfdnet::bgp {

/// A route considered by the decision process, with where it came from.
struct Candidate {
  const Route* route = nullptr;
  net::NodeId from = net::kInvalidNode;  ///< neighbor, or self if originated
  bool self_originated = false;
};

/// Routing policy: import preference, export rules, and route ranking.
///
/// The paper evaluates two policies (§5.1 uses shortest-path; §7 uses
/// no-valley). Policies are stateless and shared across routers.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Local preference assigned when importing a route from a neighbor with
  /// relationship `from_rel` (what the neighbor is to me).
  virtual int import_pref(net::Relationship from_rel) const = 0;

  /// Whether a route learned from `from_rel` (nullopt = self-originated) may
  /// be announced to a neighbor that is `to_rel` to me.
  virtual bool can_export(std::optional<net::Relationship> from_rel,
                          net::Relationship to_rel) const = 0;

  /// True if `a` ranks strictly above `b`. The default order is the BGP
  /// decision process restricted to what the simulator models:
  /// self-originated first, then higher local_pref, then shorter AS path,
  /// then lowest neighbor id (deterministic tie-break).
  virtual bool better(const Candidate& a, const Candidate& b) const;
};

/// Shortest AS path everywhere; everything is exported to everyone.
/// This is the paper's default ("shortest path routing policy", §7).
class ShortestPathPolicy final : public Policy {
 public:
  int import_pref(net::Relationship) const override { return 100; }
  bool can_export(std::optional<net::Relationship>,
                  net::Relationship) const override {
    return true;
  }
};

/// No-valley / Gao–Rexford policy (§7): prefer customer routes over peer
/// routes over provider routes; routes learned from a peer or provider are
/// exported only to customers, so nobody transits traffic for third parties.
class NoValleyPolicy final : public Policy {
 public:
  int import_pref(net::Relationship from_rel) const override {
    switch (from_rel) {
      case net::Relationship::kCustomer:
        return 200;
      case net::Relationship::kPeer:
        return 150;
      case net::Relationship::kProvider:
        return 100;
    }
    return 100;  // unreachable
  }

  bool can_export(std::optional<net::Relationship> from_rel,
                  net::Relationship to_rel) const override {
    // Own routes and customer routes go to everyone; peer/provider routes go
    // only to customers.
    if (!from_rel || *from_rel == net::Relationship::kCustomer) return true;
    return to_rel == net::Relationship::kCustomer;
  }
};

}  // namespace rfdnet::bgp
