#pragma once

#include <optional>

#include "bgp/message.hpp"
#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "net/types.hpp"

namespace rfdnet::bgp {

/// Interface the router uses to consult route flap damping. Implemented by
/// `rfd::DampingModule`; routers without damping simply have no hook.
///
/// The contract mirrors RFC 2439 / Fig. 2 of the paper: damping state lives
/// per RIB-IN entry (peer, prefix); every received update updates the
/// penalty; a suppressed entry keeps receiving updates but is excluded from
/// the decision process.
class DampingHook {
 public:
  virtual ~DampingHook() = default;

  /// Called for every received update *before* the RIB-IN entry is
  /// overwritten. `previous_route` is the entry's route prior to this update
  /// (nullopt when withdrawn/never announced), which the implementation
  /// needs to classify the update (withdrawal / re-announcement / attribute
  /// change / duplicate). `loop_denied` marks an announcement that AS-path
  /// loop detection rejected (delivered here as an implicit withdrawal):
  /// inbound filtering denies such routes before damping, so they are
  /// penalty-free by default.
  virtual void on_update(int peer_slot, const UpdateMessage& msg,
                         const std::optional<Route>& previous_route,
                         bool loop_denied) = 0;

  /// Whether the entry (peer_slot, p) is currently suppressed.
  virtual bool suppressed(int peer_slot, Prefix p) const = 0;

  /// Drops all damping state (used between warm-up and measurement).
  virtual void reset() = 0;
};

}  // namespace rfdnet::bgp
