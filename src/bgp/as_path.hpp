#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bgp/path_table.hpp"
#include "net/types.hpp"

namespace rfdnet::bgp {

/// Handle to an interned path node; never dangles (see `PathTable`).
using AsPathRef = const PathTable::Node*;

/// BGP AS_PATH: the sequence of ASes an announcement has traversed.
/// `front()` is the most recent sender (the neighbor the route was learned
/// from after prepending); `back()` is the origin AS. Used for loop
/// detection and as the length tie-breaker in route selection.
///
/// An `AsPath` is a flyweight: one pointer into the thread's `PathTable`,
/// where every distinct hop sequence lives exactly once. Copying a path —
/// per-peer export fan-out, RIB bookkeeping, messages in flight — copies the
/// handle, not the hops; equality between same-thread paths is a pointer
/// compare; loop detection consults the node's precomputed bloom bits before
/// falling back to a scan.
class AsPath {
 public:
  AsPath() : node_(PathTable::local().empty_path()) {}

  /// Path containing only the origin AS.
  static AsPath origin(net::NodeId as) {
    return AsPath(PathTable::local().origin(as));
  }

  /// Interns an explicit hop sequence into this thread's table. Used when a
  /// path crosses a table boundary (e.g. a cross-shard update materializes
  /// its hops and re-interns them at the destination shard).
  static AsPath from_hops(std::vector<net::NodeId> hops) {
    return AsPath(PathTable::local().intern(std::move(hops)));
  }

  /// This path with `as` prepended (as done when a route is announced to an
  /// external peer). Interned: repeated prepends of the same AS onto the
  /// same tail return the identical node (memo hit, no allocation).
  AsPath prepended(net::NodeId as) const {
    return AsPath(PathTable::local().prepend(node_, as));
  }

  /// Loop detection: bloom reject first (a clear bit proves absence), plain
  /// scan only when the bloom bits collide.
  bool contains(net::NodeId as) const {
    if (!(node_->bloom & PathTable::bloom_bit(as))) return false;
    return contains_scan(as);
  }
  /// Reference linear scan (property tests check it agrees with `contains`).
  bool contains_scan(net::NodeId as) const;

  std::size_t length() const { return node_->hops->size(); }
  bool empty() const { return node_->hops->empty(); }
  net::NodeId front() const { return node_->hops->front(); }
  net::NodeId origin_as() const { return node_->hops->back(); }
  const std::vector<net::NodeId>& hops() const { return *node_->hops; }

  /// The interned node (tests: sharing/identity assertions).
  AsPathRef ref() const { return node_; }
  /// Intern id within the owning table (deterministic per event sequence).
  std::uint32_t intern_id() const { return node_->id; }

  /// Same-table handles compare by identity (hash-consing makes that exact);
  /// paths interned by different threads fall back to comparing hops.
  friend bool operator==(const AsPath& a, const AsPath& b) {
    if (a.node_ == b.node_) return true;
    if (a.node_->owner == b.node_->owner) return false;
    return *a.node_->hops == *b.node_->hops;
  }

  std::string to_string() const;

 private:
  explicit AsPath(AsPathRef node) : node_(node) {}
  AsPathRef node_;  ///< never null: the empty path is interned too
};

}  // namespace rfdnet::bgp
