#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace rfdnet::bgp {

/// BGP AS_PATH: the sequence of ASes an announcement has traversed.
/// `front()` is the most recent sender (the neighbor the route was learned
/// from after prepending); `back()` is the origin AS. Used for loop
/// detection and as the length tie-breaker in route selection.
class AsPath {
 public:
  AsPath() = default;

  /// Path containing only the origin AS.
  static AsPath origin(net::NodeId as) { return AsPath({as}); }

  /// This path with `as` prepended (as done when a route is announced to an
  /// external peer).
  AsPath prepended(net::NodeId as) const;

  bool contains(net::NodeId as) const;
  std::size_t length() const { return hops_.size(); }
  bool empty() const { return hops_.empty(); }
  net::NodeId front() const { return hops_.front(); }
  net::NodeId origin_as() const { return hops_.back(); }
  const std::vector<net::NodeId>& hops() const { return hops_; }

  friend bool operator==(const AsPath&, const AsPath&) = default;

  std::string to_string() const;

 private:
  explicit AsPath(std::vector<net::NodeId> hops) : hops_(std::move(hops)) {}
  std::vector<net::NodeId> hops_;
};

}  // namespace rfdnet::bgp
