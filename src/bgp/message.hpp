#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "net/types.hpp"
#include "obs/span.hpp"
#include "rcn/root_cause.hpp"

namespace rfdnet::bgp {

enum class UpdateKind : std::uint8_t {
  kAnnouncement,
  kWithdrawal,
};

std::string to_string(UpdateKind k);

/// Relative preference of an announcement versus the sender's previous
/// announcement to the same peer — the extra attribute of *selective route
/// flap damping* (Mao et al., SIGCOMM 2002; discussed in §6 of the paper).
/// A degrading (kWorse) sequence is the signature of path exploration.
enum class RelPref : std::uint8_t {
  kBetter,
  kEqual,
  kWorse,
};

std::string to_string(RelPref p);

/// One BGP UPDATE for one prefix. Announcements carry a route; withdrawals
/// do not. The optional root cause is the RCN attribute of paper §6; plain
/// BGP updates simply leave it empty.
struct UpdateMessage {
  Prefix prefix = 0;
  UpdateKind kind = UpdateKind::kAnnouncement;
  std::optional<Route> route;         ///< set iff kind == kAnnouncement
  std::optional<rcn::RootCause> rc;   ///< RCN attribute, if deployed
  /// Selective-damping attribute: how this announcement ranks against the
  /// sender's previous announcement on this session (routers always attach
  /// it; only selective damping consults it).
  std::optional<RelPref> rel_pref;
  /// Causal provenance (all-zero when tracing is off or the update is not
  /// derived from a traced root cause). Stamped by the sender's `bgp.send`
  /// span; the receiver closes it at delivery and parents its own activity
  /// on it. Not a BGP attribute — pure observability freight.
  obs::SpanContext span;

  static UpdateMessage announce(Prefix p, Route r,
                                std::optional<rcn::RootCause> rc = {}) {
    return UpdateMessage{p, UpdateKind::kAnnouncement, std::move(r),
                         std::move(rc), std::nullopt, {}};
  }
  static UpdateMessage withdraw(Prefix p,
                                std::optional<rcn::RootCause> rc = {}) {
    return UpdateMessage{p, UpdateKind::kWithdrawal, std::nullopt,
                         std::move(rc), std::nullopt, {}};
  }

  bool is_announcement() const { return kind == UpdateKind::kAnnouncement; }
  bool is_withdrawal() const { return kind == UpdateKind::kWithdrawal; }

  std::string to_string() const;
};

/// Freelist pool for in-flight `UpdateMessage`s (plus their transport
/// freight: endpoints and link epoch). `bgp::BgpNetwork` parks every message
/// it puts on the wire in a slot and schedules a delivery closure that
/// carries only the slot index — small enough for `std::function`'s inline
/// buffer, so the per-send closure allocation disappears, and slots recycle
/// instead of allocating per message.
///
/// Slots live in a deque: addresses are stable across `acquire`, so a slot
/// reference held through a delivery survives the re-entrant sends that
/// delivery triggers. A released slot is scrubbed back to a pristine
/// default-constructed message *before* it re-enters the freelist, so a
/// recycled slot can never resurrect a previous message's span / root-cause
/// / rel-pref freight.
class UpdateMessagePool {
 public:
  struct Slot {
    UpdateMessage msg;
    net::NodeId from = net::kInvalidNode;
    net::NodeId to = net::kInvalidNode;
    std::uint64_t epoch = 0;
  };

  /// Intern/alloc accounting (fed into `sim::EngineProfile::alloc`).
  struct Stats {
    std::uint64_t acquired = 0;     ///< total acquires
    std::uint64_t reused = 0;       ///< acquires served from the freelist
    std::size_t outstanding = 0;    ///< slots currently in flight
    std::size_t high_water = 0;     ///< max simultaneous in-flight slots
  };

  /// Takes a pristine slot, recycling a released one when available.
  std::uint32_t acquire();
  /// Scrubs the slot and returns it to the freelist.
  void release(std::uint32_t idx);

  Slot& at(std::uint32_t idx) { return slots_[idx]; }
  const Slot& at(std::uint32_t idx) const { return slots_[idx]; }

  const Stats& stats() const { return stats_; }

 private:
  std::deque<Slot> slots_;
  std::vector<std::uint32_t> free_;
  Stats stats_;
};

}  // namespace rfdnet::bgp
