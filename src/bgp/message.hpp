#pragma once

#include <optional>
#include <string>

#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "obs/span.hpp"
#include "rcn/root_cause.hpp"

namespace rfdnet::bgp {

enum class UpdateKind : std::uint8_t {
  kAnnouncement,
  kWithdrawal,
};

std::string to_string(UpdateKind k);

/// Relative preference of an announcement versus the sender's previous
/// announcement to the same peer — the extra attribute of *selective route
/// flap damping* (Mao et al., SIGCOMM 2002; discussed in §6 of the paper).
/// A degrading (kWorse) sequence is the signature of path exploration.
enum class RelPref : std::uint8_t {
  kBetter,
  kEqual,
  kWorse,
};

std::string to_string(RelPref p);

/// One BGP UPDATE for one prefix. Announcements carry a route; withdrawals
/// do not. The optional root cause is the RCN attribute of paper §6; plain
/// BGP updates simply leave it empty.
struct UpdateMessage {
  Prefix prefix = 0;
  UpdateKind kind = UpdateKind::kAnnouncement;
  std::optional<Route> route;         ///< set iff kind == kAnnouncement
  std::optional<rcn::RootCause> rc;   ///< RCN attribute, if deployed
  /// Selective-damping attribute: how this announcement ranks against the
  /// sender's previous announcement on this session (routers always attach
  /// it; only selective damping consults it).
  std::optional<RelPref> rel_pref;
  /// Causal provenance (all-zero when tracing is off or the update is not
  /// derived from a traced root cause). Stamped by the sender's `bgp.send`
  /// span; the receiver closes it at delivery and parents its own activity
  /// on it. Not a BGP attribute — pure observability freight.
  obs::SpanContext span;

  static UpdateMessage announce(Prefix p, Route r,
                                std::optional<rcn::RootCause> rc = {}) {
    return UpdateMessage{p, UpdateKind::kAnnouncement, std::move(r),
                         std::move(rc), std::nullopt};
  }
  static UpdateMessage withdraw(Prefix p,
                                std::optional<rcn::RootCause> rc = {}) {
    return UpdateMessage{p, UpdateKind::kWithdrawal, std::nullopt,
                         std::move(rc), std::nullopt};
  }

  bool is_announcement() const { return kind == UpdateKind::kAnnouncement; }
  bool is_withdrawal() const { return kind == UpdateKind::kWithdrawal; }

  std::string to_string() const;
};

}  // namespace rfdnet::bgp
