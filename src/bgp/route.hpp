#pragma once

#include <string>

#include "bgp/as_path.hpp"

namespace rfdnet::bgp {

/// The route attributes the simulator models: AS path plus the local
/// preference assigned by the import policy. Two announcements whose `Route`
/// differs are an "attributes change" for damping purposes (RFC 2439).
struct Route {
  AsPath path;
  int local_pref = 100;

  friend bool operator==(const Route&, const Route&) = default;

  std::string to_string() const {
    return path.to_string() + " lp=" + std::to_string(local_pref);
  }
};

}  // namespace rfdnet::bgp
