#include "bgp/path_table.hpp"

#include <utility>

namespace rfdnet::bgp {

namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash of one word.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t PathTable::VecHash::operator()(
    const std::vector<net::NodeId>& v) const {
  std::uint64_t h = 0x243f6a8885a308d3ULL ^ v.size();
  for (const net::NodeId as : v) h = mix64(h ^ as);
  return static_cast<std::size_t>(h);
}

std::uint64_t PathTable::bloom_bit(net::NodeId as) {
  return 1ULL << (mix64(as) & 63u);
}

namespace {

// Per-thread redirection target for PathTable::local() (sharded runs bind
// their per-shard tables here; see PathTable::bind_local).
thread_local PathTable* t_bound_table = nullptr;

}  // namespace

PathTable::PathTable() { empty_ = intern({}); }

PathTable& PathTable::local() {
  if (t_bound_table != nullptr) return *t_bound_table;
  thread_local PathTable table;
  return table;
}

void PathTable::bind_local(PathTable* table) { t_bound_table = table; }

const PathTable::Node* PathTable::intern(std::vector<net::NodeId> hops) {
  ++stats_.intern_requests;
  const auto [it, inserted] = nodes_.try_emplace(std::move(hops));
  if (inserted) {
    ++stats_.node_builds;
    Node& n = it->second;
    n.hops = &it->first;
    n.id = next_id_++;
    n.owner = this;
    for (const net::NodeId as : it->first) n.bloom |= bloom_bit(as);
  }
  return &it->second;
}

const PathTable::Node* PathTable::origin(net::NodeId as) {
  const auto it = origins_.find(as);
  if (it != origins_.end()) {
    ++stats_.intern_requests;
    ++stats_.prepend_hits;
    return it->second;
  }
  const Node* n = intern({as});
  origins_.emplace(as, n);
  return n;
}

const PathTable::Node* PathTable::prepend(const Node* tail, net::NodeId as) {
  if (tail->owner == this) {
    const auto it = tail->prepends.find(as);
    if (it != tail->prepends.end()) {
      ++stats_.intern_requests;
      ++stats_.prepend_hits;
      return it->second;
    }
  }
  std::vector<net::NodeId> hops;
  hops.reserve(tail->hops->size() + 1);
  hops.push_back(as);
  hops.insert(hops.end(), tail->hops->begin(), tail->hops->end());
  const Node* n = intern(std::move(hops));
  if (tail->owner == this) tail->prepends.emplace(as, n);
  return n;
}

PathTable::Stats PathTable::stats() const {
  Stats s = stats_;
  s.unique_paths = nodes_.size();
  return s;
}

}  // namespace rfdnet::bgp
