#pragma once

#include <stdexcept>

namespace rfdnet::bgp {

/// Timing knobs of the protocol engine. The defaults are tuned to the
/// SSFNet-style setup the paper simulates: millisecond-scale propagation,
/// sub-second processing, and the classic 30 s jittered MRAI that paces the
/// waves of path exploration.
struct TimingConfig {
  /// Per-message processing delay at the receiver, drawn uniformly from
  /// [proc_delay_min_s, proc_delay_max_s]. This is the asynchrony source
  /// that makes different routers explore different alternate paths.
  double proc_delay_min_s = 0.01;
  double proc_delay_max_s = 0.25;

  /// Min Route Advertisement Interval per (peer, prefix), jittered by a
  /// uniform factor in [mrai_jitter_min, mrai_jitter_max] per expiry as RFC
  /// 4271 suggests. Zero disables MRAI.
  double mrai_s = 30.0;
  double mrai_jitter_min = 0.75;
  double mrai_jitter_max = 1.0;

  /// Classic BGP applies MRAI to announcements only; withdrawals go out
  /// immediately. Set true to rate-limit withdrawals as well (WRATE).
  bool mrai_on_withdrawals = false;

  /// Whether a router advertises its best path back to the peer it learned
  /// it from (receiver-side AS-path loop detection denies it). This is the
  /// classic eBGP behavior and the default. When off, switching the best
  /// path to a new upstream emits an explicit withdrawal toward it instead —
  /// which route flap damping then charges at full withdrawal penalty, a
  /// significant distortion (see the ablation bench).
  bool advertise_to_sender = true;

  /// Sender-side AS-path loop filtering (RFC 4271 permits omitting routes
  /// the peer would reject): a path containing the peer's AS is not
  /// announced to it, and a withdrawal is sent instead if something was
  /// previously advertised. Off by default — the receiver-side check plus
  /// penalty-free loop-denied updates model the same outcome with fewer
  /// state transitions on the wire.
  bool sender_side_loop_check = false;

  void validate() const {
    if (proc_delay_min_s < 0 || proc_delay_max_s < proc_delay_min_s) {
      throw std::invalid_argument("TimingConfig: bad processing delay range");
    }
    if (mrai_s < 0) throw std::invalid_argument("TimingConfig: negative MRAI");
    if (mrai_jitter_min <= 0 || mrai_jitter_max < mrai_jitter_min) {
      throw std::invalid_argument("TimingConfig: bad MRAI jitter range");
    }
  }
};

}  // namespace rfdnet::bgp
