#include "bgp/sharded_network.hpp"

#include <stdexcept>
#include <utility>

#include "bgp/as_path.hpp"

namespace rfdnet::bgp {

namespace {

/// SplitMix64 finalizer: decorrelates the per-entity sub-seeds derived from
/// one root seed (adjacent ids must not produce adjacent xoshiro states).
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kRouterStream = 0xA5ULL << 56;
constexpr std::uint64_t kWireStream = 0x5AULL << 56;

}  // namespace

ShardedBgpNetwork::ShardedBgpNetwork(const net::Graph& graph,
                                     const net::Partition& part,
                                     const TimingConfig& cfg,
                                     const Policy& policy,
                                     sim::ShardedEngine& engine,
                                     std::uint64_t seed,
                                     const std::vector<Observer*>& observers,
                                     RibBackendKind rib_backend)
    : graph_(graph), part_(part), cfg_(cfg), engine_(engine) {
  cfg.validate();
  const std::size_t n = graph.node_count();
  if (part.shard_of.size() != n) {
    throw std::invalid_argument("ShardedBgpNetwork: partition/graph mismatch");
  }
  if (part.shards != engine.shards()) {
    throw std::invalid_argument(
        "ShardedBgpNetwork: partition and engine disagree on shard count");
  }
  const auto k = static_cast<std::size_t>(part.shards);
  if (!observers.empty() && observers.size() != k) {
    throw std::invalid_argument(
        "ShardedBgpNetwork: need one observer slot per shard");
  }

  tables_.reserve(k);
  pools_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    tables_.push_back(std::make_unique<PathTable>());
    pools_.push_back(std::make_unique<UpdateMessagePool>());
  }
  delivered_.resize(k);
  engine_.set_thread_init(
      [this](int s) { PathTable::bind_local(tables_[s].get()); });
  engine_.set_thread_fini([](int) { PathTable::bind_local(nullptr); });

  // Per-router MRAI-jitter streams: one generator per router, sub-seeded
  // from the root seed and the node id, so a router draws the same jitter
  // sequence no matter which shard (or how many shards) it runs on.
  for (net::NodeId u = 0; u < n; ++u) {
    router_rngs_.emplace_back(mix(seed ^ kRouterStream ^ u));
  }

  routers_.reserve(n);
  for (net::NodeId u = 0; u < n; ++u) {
    std::vector<BgpRouter::PeerInfo> peers;
    peers.reserve(graph.degree(u));
    for (const auto& e : graph.neighbors(u)) {
      peers.push_back(BgpRouter::PeerInfo{e.neighbor, e.rel});
    }
    const int s = shard_of(u);
    // Anything the constructor interns must land in the shard's table.
    PathTable::bind_local(tables_[static_cast<std::size_t>(s)].get());
    routers_.push_back(std::make_unique<BgpRouter>(
        u, std::move(peers), cfg, policy, engine_.shard(s), router_rngs_[u],
        [this](net::NodeId from, net::NodeId to, const UpdateMessage& msg) {
          transmit(from, to, msg);
        },
        observers.empty() ? nullptr : observers[static_cast<std::size_t>(s)],
        rib_backend));
  }
  PathTable::bind_local(nullptr);

  // Directed wires in graph order: the index is a pure function of the
  // graph, so delivery keys and per-wire PRNG streams are identical for
  // every partition of it.
  std::uint32_t idx = 0;
  for (net::NodeId u = 0; u < n; ++u) {
    for (const auto& e : graph.neighbors(u)) {
      Wire w;
      w.delay_s = e.delay_s;
      w.dest_shard = shard_of(e.neighbor);
      w.idx = idx;
      w.clear = sim::SimTime::zero();
      w.rng = sim::Rng(mix(seed ^ kWireStream ^ idx));
      wires_.emplace(directed_key(u, e.neighbor), w);
      ++idx;
    }
  }
}

sim::Duration ShardedBgpNetwork::conservative_lookahead() const {
  if (!part_.has_cut()) {
    // No link crosses shards: shards never interact, any window works.
    return sim::Duration::seconds(1e9);
  }
  return sim::Duration::seconds(part_.min_cut_delay_s +
                                cfg_.proc_delay_min_s);
}

void ShardedBgpNetwork::transmit(net::NodeId from, net::NodeId to,
                                 const UpdateMessage& msg) {
  Wire& wire = wires_.find(directed_key(from, to))->second;
  const int src = shard_of(from);
  sim::Engine& src_engine = engine_.shard(src);

  const double proc =
      wire.rng.uniform(cfg_.proc_delay_min_s, cfg_.proc_delay_max_s);
  sim::SimTime when =
      src_engine.now() + sim::Duration::seconds(wire.delay_s + proc);
  // FIFO clamp, exactly as in the serial transport: BGP runs over TCP, so a
  // later update must never overtake an earlier one on the same session.
  if (when < wire.clear) when = wire.clear;
  wire.clear = when + sim::Duration::micros(1);
  const std::uint64_t key = delivery_key(wire.idx, wire.seq++);

  if (wire.dest_shard == src) {
    UpdateMessagePool& pool = *pools_[static_cast<std::size_t>(src)];
    const std::uint32_t slot = pool.acquire();
    UpdateMessagePool::Slot& parked = pool.at(slot);
    parked.msg = msg;
    parked.from = from;
    parked.to = to;
    src_engine.schedule_keyed(
        when, key, [this, src, slot] { deliver_pooled(src, slot); },
        sim::EventKind::kDelivery, to);
    return;
  }

  // Cross-shard: materialize the AS path (the interned handle is only valid
  // in the sender's table) and let the destination shard re-intern it. Span
  // freight is dropped — the sharded transport does not support tracing.
  Envelope env;
  env.from = from;
  env.to = to;
  env.prefix = msg.prefix;
  env.kind = msg.kind;
  if (msg.route) {
    env.has_route = true;
    env.hops = msg.route->path.hops();
    env.local_pref = msg.route->local_pref;
  }
  env.rc = msg.rc;
  env.rel_pref = msg.rel_pref;
  engine_.post(
      wire.dest_shard, when, key, to,
      [this, env = std::move(env)] { deliver_cross(env); },
      sim::EventKind::kDelivery);
}

void ShardedBgpNetwork::deliver_pooled(int shard, std::uint32_t slot) {
  UpdateMessagePool& pool = *pools_[static_cast<std::size_t>(shard)];
  const UpdateMessagePool::Slot& parked = pool.at(slot);
  ++delivered_[static_cast<std::size_t>(shard)].value;
  routers_[parked.to]->deliver(parked.from, parked.msg);
  pool.release(slot);
}

void ShardedBgpNetwork::deliver_cross(const Envelope& env) {
  UpdateMessage msg;
  msg.prefix = env.prefix;
  msg.kind = env.kind;
  if (env.has_route) {
    msg.route = Route{AsPath::from_hops(env.hops), env.local_pref};
  }
  msg.rc = env.rc;
  msg.rel_pref = env.rel_pref;
  ++delivered_[static_cast<std::size_t>(shard_of(env.to))].value;
  routers_[env.to]->deliver(env.from, msg);
}

std::uint64_t ShardedBgpNetwork::delivered_count() const {
  std::uint64_t n = 0;
  for (const ShardCounter& c : delivered_) n += c.value;
  return n;
}

bool ShardedBgpNetwork::all_reachable(Prefix p) const {
  for (const auto& r : routers_) {
    if (!r->best(p)) return false;
  }
  return true;
}

bool ShardedBgpNetwork::none_reachable(Prefix p) const {
  for (const auto& r : routers_) {
    if (r->best(p)) return false;
  }
  return true;
}

}  // namespace rfdnet::bgp
