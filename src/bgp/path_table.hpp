#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"

namespace rfdnet::bgp {

/// Hash-consed AS-path storage (the flyweight trick SSFNet-scale BGP
/// simulators use to reach thousand-node topologies): every distinct hop
/// sequence is stored exactly once, and `AsPath` handles point at the shared
/// node. Equality between paths from the same table is a pointer compare;
/// length and the loop-detection bloom filter are precomputed per node.
///
/// Ownership rules (see DESIGN.md §4):
///  * One table per thread (`PathTable::local()`). A simulation runs wholly
///    on one thread — parallelism lives *across* trials — so the hot path
///    never takes a lock.
///  * The table is append-only for the lifetime of its thread. Nodes are
///    never freed or moved (the map is node-based), so an `AsPathRef` can
///    never dangle, no matter how many engines, networks or experiment runs
///    come and go on the thread. Hash-consing keeps growth bounded by the
///    number of *distinct* paths ever seen, which repeated trials share.
class PathTable {
 public:
  /// One interned path. `hops` points at the intern key inside the table
  /// (stable for the table's lifetime); `bloom` is the OR of one hash-picked
  /// bit per hop, so a clear bit proves an AS is absent without scanning.
  struct Node {
    const std::vector<net::NodeId>* hops = nullptr;
    std::uint64_t bloom = 0;
    std::uint32_t id = 0;  ///< sequential per table, in intern order
    const PathTable* owner = nullptr;
    /// Prepend memo: head AS -> interned one-hop-longer path. Makes the
    /// per-decision export prepend O(1) after the first fan-out.
    mutable std::unordered_map<net::NodeId, const Node*> prepends;
  };

  /// Allocation/intern counters (fed into `sim::EngineProfile` by the
  /// experiment driver; also the basis of the export-hoist regression test).
  /// `intern_requests` counts every intern/origin/prepend call and is a pure
  /// function of the event sequence; `node_builds` (hash-cons misses) and
  /// `prepend_hits` additionally depend on how warm the table already is.
  struct Stats {
    std::uint64_t intern_requests = 0;
    std::uint64_t node_builds = 0;
    std::uint64_t prepend_hits = 0;
    std::uint64_t unique_paths = 0;  ///< live nodes, the empty path included
  };

  PathTable();
  PathTable(const PathTable&) = delete;
  PathTable& operator=(const PathTable&) = delete;

  /// The table every `AsPath` on this thread interns into: the bound table
  /// (see `bind_local`) when one is installed, else the thread's own
  /// thread-local table.
  static PathTable& local();

  /// Redirects this *thread's* `local()` to `table` (nullptr restores the
  /// default thread-local table). Sharded runs own one table per shard and
  /// bind it from whichever worker thread executes the shard each round, so
  /// interned handles survive the worker threads that created them (the
  /// tables outlive the run; thread-local tables would die with their
  /// threads). The caller is responsible for the usual append-only
  /// lifetime rules and for exclusive use: a bound table must only ever be
  /// used by one thread at a time.
  static void bind_local(PathTable* table);

  /// Bloom bit for one AS id (one of 64, hash-picked).
  static std::uint64_t bloom_bit(net::NodeId as);

  const Node* empty_path() const { return empty_; }
  /// Interns `hops`, returning the unique node for that sequence.
  const Node* intern(std::vector<net::NodeId> hops);
  /// Interns the single-hop path [as] (memoized: origins are re-made on
  /// every decision-process run).
  const Node* origin(net::NodeId as);
  /// Interns [as] + tail. Memoized on `tail` when it lives in this table.
  const Node* prepend(const Node* tail, net::NodeId as);

  Stats stats() const;

 private:
  struct VecHash {
    std::size_t operator()(const std::vector<net::NodeId>& v) const;
  };

  // Node-based map: element (and key) addresses survive rehashing, which is
  // what lets Node::hops alias its own key and handles stay valid forever.
  std::unordered_map<std::vector<net::NodeId>, Node, VecHash> nodes_;
  std::unordered_map<net::NodeId, const Node*> origins_;
  const Node* empty_ = nullptr;
  std::uint32_t next_id_ = 0;
  mutable Stats stats_;
};

}  // namespace rfdnet::bgp
