#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/observer.hpp"
#include "bgp/policy.hpp"
#include "bgp/router.hpp"
#include "net/graph.hpp"
#include "rcn/root_cause.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace rfdnet::bgp {

/// A network of BGP routers wired per a `net::Graph`: one router per node,
/// one session per link. Transport delivers each update after the link's
/// propagation delay plus a uniform processing delay at the receiver — the
/// SSFNet-style timing model whose asynchrony drives path exploration.
class BgpNetwork {
 public:
  /// `graph`, `cfg`, `policy`, `engine` and `rng` must outlive the network.
  /// `rib_backend` selects the per-prefix storage every router runs on.
  BgpNetwork(const net::Graph& graph, const TimingConfig& cfg,
             const Policy& policy, sim::Engine& engine, sim::Rng& rng,
             Observer* observer = nullptr,
             RibBackendKind rib_backend = RibBackendKind::kHashMap);

  BgpRouter& router(net::NodeId id) { return *routers_.at(id); }
  const BgpRouter& router(net::NodeId id) const { return *routers_.at(id); }
  std::size_t size() const { return routers_.size(); }
  const net::Graph& graph() const { return graph_; }

  /// Total updates delivered so far (each hop counts once).
  std::uint64_t delivered_count() const { return delivered_; }
  /// Updates lost to link failures.
  std::uint64_t dropped_count() const { return dropped_; }

  /// Sets the state of link {u, v}. Downing a link tears down the BGP
  /// session at both ends (routes learned over it become unfeasible;
  /// updates in flight are lost); upping re-establishes the session and the
  /// endpoints re-advertise their best routes. Each endpoint tags the
  /// updates it triggers with a fresh root cause for its direction of the
  /// link. No-op if the link is already in the requested state.
  void set_link(net::NodeId u, net::NodeId v, bool up);
  bool link_is_up(net::NodeId u, net::NodeId v) const;

  /// Per-message transmission perturbation (fault injection). Consulted for
  /// every update put on a healthy link; may drop the message or add extra
  /// in-flight delay. The extra delay is applied *before* the per-session
  /// FIFO clamp, so TCP ordering still holds.
  struct Perturbation {
    bool drop = false;
    double extra_delay_s = 0.0;
  };
  using PerturbFn =
      std::function<Perturbation(net::NodeId from, net::NodeId to)>;
  /// Installs (or removes, with an empty function) the perturbation hook.
  /// Not consulted for messages already in flight.
  void set_perturbation(PerturbFn fn) { perturb_ = std::move(fn); }

  /// Attaches (or detaches) the causal span tracer: the network closes the
  /// wire span of every update it drops, and every router gets the tracer
  /// for its own span emission. Not owned.
  void set_span_tracer(obs::SpanTracer* t) {
    spans_ = t;
    for (auto& r : routers_) r->set_span_tracer(t);
  }

  /// True when every router's Loc-RIB holds a route for `p`.
  bool all_reachable(Prefix p) const;
  /// True when no router has a route for `p`.
  bool none_reachable(Prefix p) const;

  /// In-flight message pool (tests / alloc profiling).
  const UpdateMessagePool& message_pool() const { return pool_; }

 private:
  void transmit(net::NodeId from, net::NodeId to, const UpdateMessage& msg);
  /// Delivery-time half of `transmit`: checks the link is still the same
  /// incarnation, hands the pooled message to the receiver, recycles the
  /// slot.
  void deliver_pooled(std::uint32_t slot);
  static std::uint64_t undirected_key(net::NodeId u, net::NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  const net::Graph& graph_;
  sim::Engine& engine_;
  sim::Rng& rng_;
  const TimingConfig& cfg_;
  Observer* observer_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
  std::vector<std::unique_ptr<BgpRouter>> routers_;
  // Link failure state, keyed by the normalized (undirected) link key:
  // epoch counts up/down transitions so in-flight messages from an earlier
  // session incarnation are discarded on delivery. Fully populated at
  // construction so `Wire` records can hold stable pointers into it.
  struct LinkState {
    bool up = true;
    std::uint64_t epoch = 0;
  };
  std::unordered_map<std::uint64_t, LinkState> link_state_;
  // Hot-path record per *directed* link, built once at construction: the
  // propagation delay (avoids the O(degree) adjacency scan per message),
  // the shared failure state of the undirected link, and the FIFO clamp —
  // BGP runs over TCP, so a later update must never overtake an earlier one
  // on the same session. One hash lookup per transmit covers all three.
  struct Wire {
    double delay_s = 0.0;
    LinkState* state = nullptr;
    sim::SimTime clear;  ///< earliest arrival for the next message
  };
  std::unordered_map<std::uint64_t, Wire> wires_;
  std::unordered_map<std::uint64_t, rcn::RootCauseSource> rc_sources_;
  UpdateMessagePool pool_;
  PerturbFn perturb_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rfdnet::bgp
