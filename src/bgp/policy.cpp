#include "bgp/policy.hpp"

namespace rfdnet::bgp {

bool Policy::better(const Candidate& a, const Candidate& b) const {
  if (a.self_originated != b.self_originated) return a.self_originated;
  if (a.route->local_pref != b.route->local_pref) {
    return a.route->local_pref > b.route->local_pref;
  }
  if (a.route->path.length() != b.route->path.length()) {
    return a.route->path.length() < b.route->path.length();
  }
  return a.from < b.from;
}

}  // namespace rfdnet::bgp
