#include "bgp/rib_backend.hpp"

namespace rfdnet::bgp {

std::string to_string(RibBackendKind k) {
  switch (k) {
    case RibBackendKind::kHashMap:
      return "hash";
    case RibBackendKind::kRadix:
      return "radix";
    case RibBackendKind::kNull:
      return "null";
  }
  return "?";
}

std::optional<RibBackendKind> parse_rib_backend(const std::string& name) {
  if (name == "hash" || name == "hashmap" || name == "hash-map") {
    return RibBackendKind::kHashMap;
  }
  if (name == "radix" || name == "trie") return RibBackendKind::kRadix;
  if (name == "null" || name == "none") return RibBackendKind::kNull;
  return std::nullopt;
}

}  // namespace rfdnet::bgp
