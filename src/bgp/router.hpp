#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/damping_hook.hpp"
#include "bgp/message.hpp"
#include "bgp/observer.hpp"
#include "bgp/policy.hpp"
#include "bgp/prefix.hpp"
#include "bgp/rib_backend.hpp"
#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rcn/root_cause.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace rfdnet::bgp {

/// One BGP speaker (one AS, per Fig. 1/2 of the paper).
///
/// Implements the RIB-IN / Loc-RIB / RIB-OUT pipeline: receives updates,
/// consults the damping hook, runs the decision process under a `Policy`,
/// and emits updates to peers subject to export rules and per-(peer, prefix)
/// MRAI pacing. Message transport (delay, delivery) is delegated to the
/// owner via `SendFn` so the router is unit-testable in isolation.
class BgpRouter {
 public:
  struct PeerInfo {
    net::NodeId id = net::kInvalidNode;
    net::Relationship rel = net::Relationship::kPeer;
  };

  /// Puts `msg` on the wire toward peer `to`. Provided by the network layer.
  using SendFn =
      std::function<void(net::NodeId from, net::NodeId to, const UpdateMessage&)>;

  BgpRouter(net::NodeId id, std::vector<PeerInfo> peers,
            const TimingConfig& cfg, const Policy& policy, sim::Engine& engine,
            sim::Rng& rng, SendFn send, Observer* observer = nullptr,
            RibBackendKind rib_backend = RibBackendKind::kHashMap);

  net::NodeId id() const { return id_; }
  int peer_count() const { return static_cast<int>(peers_.size()); }
  const PeerInfo& peer(int slot) const { return peers_.at(slot); }
  /// Slot index for a neighbor id, or -1.
  int peer_slot(net::NodeId neighbor) const;

  /// Attaches (or detaches, with nullptr) the damping hook. Not owned.
  void set_damping(DampingHook* hook) { damper_ = hook; }
  DampingHook* damping() const { return damper_; }

  /// Originates `p` locally and announces it (subject to policy/MRAI).
  void originate(Prefix p, std::optional<rcn::RootCause> rc = {});
  /// Stops originating `p` and withdraws it.
  void withdraw_origin(Prefix p, std::optional<rcn::RootCause> rc = {});
  bool originates(Prefix p) const { return originated_.contains(p); }

  /// Processes an update that has arrived from neighbor `from` (called by
  /// the network layer at delivery time, after propagation + processing
  /// delay).
  void deliver(net::NodeId from, const UpdateMessage& msg);

  /// The BGP session to peer `slot` went down (link failure): all routes
  /// learned on it become unfeasible (implicit withdrawals, visible to the
  /// damping hook), and the RIB-OUT state for the peer is discarded — the
  /// peer no longer has anything from us. `rc` tags the updates this change
  /// triggers (RCN).
  void session_down(int slot, std::optional<rcn::RootCause> rc = {});

  /// The session to peer `slot` came (back) up: the current best routes are
  /// advertised to it afresh, as in a BGP session establishment.
  void session_up(int slot, std::optional<rcn::RootCause> rc = {});

  /// Whether the session to peer `slot` is established. While a session is
  /// down, the decision process keeps running but nothing is emitted toward
  /// the peer — and, crucially, RIB-OUT bookkeeping is not advanced, so the
  /// re-advertisement at `session_up` is never skipped because of an update
  /// that was "sent" into the dead session and lost.
  bool session_open(int slot) const { return session_open_.at(slot); }

  /// Called by the damping module when the reuse timer for (slot, p) fires
  /// and the entry becomes eligible again. Returns true if the reuse changed
  /// this router's best route — a "noisy" reuse in the paper's terms.
  bool on_reuse(int slot, Prefix p);

  /// Current best route for `p` (Loc-RIB), if any.
  std::optional<Route> best(Prefix p) const;
  /// Slot the best route was learned from (-1 = self-originated or none).
  int best_slot(Prefix p) const;
  /// Route currently stored in RIB-IN for (slot, p), if any.
  std::optional<Route> rib_in_route(int slot, Prefix p) const;
  /// Number of updates this router has put on the wire.
  std::uint64_t sent_count() const { return sent_; }

  /// Updates currently held back (pending RIB-OUT entries).
  int pending_depth() const { return pending_depth_; }

  /// Storage backend the per-prefix tables run on.
  RibBackendKind rib_backend() const { return rib_in_.kind(); }

  /// Resident per-prefix rows in each table. A prefix that has been fully
  /// withdrawn everywhere is reclaimed (see `maybe_reclaim`), so at
  /// quiescence these track the set of reachable prefixes, not the set of
  /// prefixes ever heard — the difference is the full-table leak this
  /// bounds. Always zero on the null backend.
  struct RibResidency {
    std::size_t rib_in = 0;
    std::size_t loc_rib = 0;
    std::size_t out = 0;
    std::size_t total() const { return rib_in + loc_rib + out; }
  };
  RibResidency residency() const {
    return RibResidency{rib_in_.size(), loc_rib_.size(), out_.size()};
  }
  /// Drains every deferred-reclaim candidate whose MRAI pacing horizon has
  /// passed (see `maybe_reclaim`). Runs automatically on every external poke
  /// (deliver, session churn, reuse, origination); drivers call it before
  /// reading `residency` so rows parked after the network's last activity
  /// don't linger in the report. O(1) when nothing is parked.
  void sweep_reclaim();
  /// Same sweep judged at an explicit instant instead of the engine clock.
  /// The telemetry probes use this: at a barrier-aligned sample instant a
  /// shard's own clock sits at its last executed event — a partition-
  /// dependent value — while the grid instant is workload-pure. Safe for any
  /// `now` at or after the last executed event on this router's engine.
  void sweep_reclaim(sim::SimTime now);

  /// Attaches (or detaches, with nullptr) a metrics bundle / trace sink.
  /// Typically one bundle is shared by every router of a network, so the
  /// counters aggregate. Not owned.
  void set_metrics(obs::RouterMetrics* m) { metrics_ = m; }
  void set_trace(obs::TraceSink* t) { trace_ = t; }

  /// Attaches (or detaches, with nullptr) the causal span tracer shared by
  /// the whole simulation. While attached, delivered updates close their
  /// wire span, processing runs under it as the active context, and every
  /// emitted update / MRAI deferral mints a child span. Not owned.
  void set_span_tracer(obs::SpanTracer* t) { spans_ = t; }

  /// Audit: pending-depth bookkeeping matches the RIB-OUT flags, and every
  /// scheduled MRAI wakeup has something to flush and a live engine event.
  /// Throws `obs::InvariantViolation` on breakage; always runs.
  void check_invariants() const;

 private:
  static constexpr int kSelfSlot = -1;
  static constexpr int kNoneSlot = -2;

  struct RibInEntry {
    std::optional<Route> route;
    std::optional<rcn::RootCause> rc;  ///< RC of the last update received
  };

  struct LocRibEntry {
    std::optional<Route> best;
    int from_slot = kNoneSlot;
  };

  struct OutEntry {
    std::optional<Route> last_sent;  ///< nullopt: withdrawn / never announced
    std::optional<Route> pending;    ///< desired state while has_pending
    std::optional<rcn::RootCause> pending_rc;
    bool has_pending = false;
    sim::SimTime mrai_ready;         ///< earliest next rate-limited send
    sim::EventId mrai_event = sim::kInvalidEvent;
    /// Span that caused the pending update (active context at enqueue time);
    /// the eventual send (or deferral) parents on it.
    obs::SpanContext pending_parent;
    /// Open `bgp.mrai_defer` span while an MRAI wakeup is scheduled.
    obs::SpanContext mrai_span;
  };

  RibInEntry& rib_in(int slot, Prefix p);
  const RibInEntry* find_rib_in(int slot, Prefix p) const;
  OutEntry& out_entry(int slot, Prefix p);
  OutEntry* find_out(int slot, Prefix p);

  /// What peer `slot` should currently be hearing from us for `p` (export
  /// policy, sender-side filtering), or nullopt for "withdrawn/nothing".
  std::optional<Route> desired_for(int slot, Prefix p) const;
  /// The route this router advertises for `loc.best` — the prepend happens
  /// here, exactly once per decision; the per-peer fan-out shares the
  /// resulting interned path. `loc.best` must be set.
  Route export_route(const LocRibEntry& loc) const;
  /// Per-peer export filters applied to the shared `exported` route:
  /// advertise-to-sender rule, policy `can_export`, sender-side loop check.
  std::optional<Route> filter_export(int slot, const LocRibEntry& loc,
                                     const Route& exported) const;

  /// Recomputes the best route for `p`, updates Loc-RIB, and enqueues the
  /// resulting updates toward every peer. `trigger_rc` is copied into those
  /// updates (RCN propagation rule, §6.1). Returns true if Loc-RIB changed.
  bool process(Prefix p, const std::optional<rcn::RootCause>& trigger_rc);

  void enqueue(int slot, Prefix p, std::optional<Route> desired,
               const std::optional<rcn::RootCause>& rc);
  /// `enqueue` with the RIB-OUT entry already in hand — the decision-process
  /// fan-out resolves `out_[p]` once and feeds every peer's entry through
  /// here instead of re-hashing per peer.
  void enqueue_entry(OutEntry& oe, int slot, Prefix p,
                     std::optional<Route> desired,
                     const std::optional<rcn::RootCause>& rc);
  void try_flush(int slot, Prefix p);
  void try_flush_entry(OutEntry& oe, int slot, Prefix p);
  void clear_pending(OutEntry& oe);
  /// Reclaims the per-prefix rows of `p` once everything about it is inert:
  /// not originated, no RIB-IN route on any slot, no Loc-RIB best, and every
  /// RIB-OUT entry idle (nothing sent-and-standing, nothing pending, no MRAI
  /// wakeup). A row whose only live state is a future `mrai_ready` is not
  /// erased — that would forget the rate limit — but is parked on
  /// `reclaim_queue_` and re-checked by `sweep_reclaim` once the pacing
  /// horizon has passed. No engine event is scheduled: reclamation is pure
  /// bookkeeping and must not perturb `Engine::pending()` or run-to-empty
  /// clock behavior.
  void maybe_reclaim(Prefix p);
  /// The same check with the park/erase decision judged at an explicit
  /// instant (see the public `sweep_reclaim(SimTime)` overload).
  void maybe_reclaim(Prefix p, sim::SimTime now);
  /// Single bookkeeping point for pending-depth changes: keeps the local
  /// counter, the metrics gauge and the observer in lockstep.
  void note_pending(int delta, sim::SimTime t);

  net::NodeId id_;
  std::vector<PeerInfo> peers_;
  std::unordered_map<net::NodeId, int> slot_of_;
  const TimingConfig& cfg_;
  const Policy& policy_;
  sim::Engine& engine_;
  sim::Rng& rng_;
  SendFn send_;
  Observer* observer_;
  DampingHook* damper_ = nullptr;
  obs::RouterMetrics* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;

  std::unordered_set<Prefix> originated_;
  /// Per-slot session state; all sessions start established.
  std::vector<bool> session_open_;
  // Per-prefix tables behind the pluggable storage backend. The rib_in_ and
  // out_ rows are indexed by peer slot.
  RibTable<std::vector<RibInEntry>> rib_in_;
  RibTable<LocRibEntry> loc_rib_;
  RibTable<std::vector<OutEntry>> out_;
  /// Deferred-reclaim parking lot: min-heap of (pacing horizon, prefix)
  /// drained by `sweep_reclaim`, with a guard set so each prefix is parked
  /// at most once (a stale horizon just re-evaluates and re-parks).
  std::vector<std::pair<sim::SimTime, Prefix>> reclaim_queue_;
  std::unordered_set<Prefix> reclaim_parked_;
  std::uint64_t sent_ = 0;
  int pending_depth_ = 0;
};

}  // namespace rfdnet::bgp
