#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bgp/config.hpp"
#include "bgp/observer.hpp"
#include "bgp/path_table.hpp"
#include "bgp/policy.hpp"
#include "bgp/router.hpp"
#include "net/graph.hpp"
#include "net/partition.hpp"
#include "sim/random.hpp"
#include "sim/sharded_engine.hpp"

namespace rfdnet::bgp {

/// `BgpNetwork` split across the shards of a `sim::ShardedEngine`: routers
/// live on the engine of their shard (per `net::Partition`), same-shard
/// updates deliver exactly like the serial transport, and cross-shard
/// updates travel as time-stamped messages into the destination shard's
/// inbox (admitted under the engine's conservative lookahead window).
///
/// Determinism across shard counts is by construction, not by luck:
///  * Every delivery carries a logical key derived from its *directed wire*
///    (graph-order wire index + per-wire sequence number), so equal-time
///    deliveries order identically however they arrived.
///  * Per-message processing delay is drawn from a per-directed-wire PRNG
///    stream, and MRAI jitter from a per-router stream — no draw shares a
///    generator with another entity, so draw order across shards is
///    irrelevant.
///  * AS paths intern into one `PathTable` per shard (bound to whichever
///    thread runs the shard via the engine's thread hooks); a cross-shard
///    announcement materializes its hops and re-interns them on arrival.
///
/// Deliberately narrower than `BgpNetwork`: no link flapping, no fault
/// perturbation, no causal spans (a cross-shard update would lose its span
/// freight anyway). The serial drivers keep those features; the sharded
/// runner rejects configs that ask for them.
class ShardedBgpNetwork {
 public:
  /// `graph`, `part`, `cfg`, `policy` and `engine` must outlive the network.
  /// `observers[s]` (optional, else all-null) observes the routers of shard
  /// `s` — events land on the recorder of the shard that executes them.
  /// `seed` roots the per-router / per-wire PRNG streams. Installs this
  /// network's path-table binding as the engine's thread init/fini hooks.
  ShardedBgpNetwork(const net::Graph& graph, const net::Partition& part,
                    const TimingConfig& cfg, const Policy& policy,
                    sim::ShardedEngine& engine, std::uint64_t seed,
                    const std::vector<Observer*>& observers = {},
                    RibBackendKind rib_backend = RibBackendKind::kHashMap);

  BgpRouter& router(net::NodeId id) { return *routers_.at(id); }
  const BgpRouter& router(net::NodeId id) const { return *routers_.at(id); }
  std::size_t size() const { return routers_.size(); }
  const net::Graph& graph() const { return graph_; }
  const net::Partition& partition() const { return part_; }
  int shard_of(net::NodeId u) const {
    return part_.shard_of[static_cast<std::size_t>(u)];
  }

  /// Lower bound on every cross-shard delivery latency: min cut-link
  /// propagation delay plus the minimum processing delay. This is the value
  /// to hand `ShardedEngine::set_lookahead`; zero/negative (sub-microsecond
  /// cut links) means the topology cannot be sharded safely. With no cut
  /// links at all, returns a huge-but-finite window (shards never interact).
  sim::Duration conservative_lookahead() const;

  /// Total updates delivered (all shards). Call only between runs.
  std::uint64_t delivered_count() const;

  /// True when every / no router's Loc-RIB holds a route for `p`.
  bool all_reachable(Prefix p) const;
  bool none_reachable(Prefix p) const;

 private:
  /// Per-directed-wire transport record, touched only by the sender's shard
  /// thread. `idx` (graph-order wire index) keys the delivery's logical key
  /// and the wire's PRNG stream; `clear` is the FIFO clamp; `seq` counts
  /// messages for the key's low bits.
  struct Wire {
    double delay_s = 0.0;
    int dest_shard = 0;
    std::uint32_t idx = 0;
    std::uint32_t seq = 0;
    sim::SimTime clear;
    sim::Rng rng{0};
  };
  /// A cross-shard update with its AS path materialized (handles don't
  /// survive table boundaries); re-interned at the destination.
  struct Envelope {
    net::NodeId from = net::kInvalidNode;
    net::NodeId to = net::kInvalidNode;
    Prefix prefix = 0;
    UpdateKind kind = UpdateKind::kAnnouncement;
    bool has_route = false;
    std::vector<net::NodeId> hops;
    int local_pref = 100;
    std::optional<rcn::RootCause> rc;
    std::optional<RelPref> rel_pref;
  };

  void transmit(net::NodeId from, net::NodeId to, const UpdateMessage& msg);
  void deliver_pooled(int shard, std::uint32_t slot);
  void deliver_cross(const Envelope& env);

  static std::uint64_t directed_key(net::NodeId u, net::NodeId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
  /// Delivery keys set bit 63, so at one instant per shard they sort after
  /// every router timer (auto keys, small prefixes) and driver event
  /// (bit 62) — the per-router interleaving a serial engine produces.
  static std::uint64_t delivery_key(std::uint32_t wire_idx,
                                    std::uint32_t seq) {
    return (1ULL << 63) | (static_cast<std::uint64_t>(wire_idx) << 32) | seq;
  }

  const net::Graph& graph_;
  const net::Partition& part_;
  const TimingConfig& cfg_;
  sim::ShardedEngine& engine_;
  std::vector<std::unique_ptr<PathTable>> tables_;  // one per shard
  std::deque<sim::Rng> router_rngs_;                // stable addresses
  std::vector<std::unique_ptr<BgpRouter>> routers_;
  std::unordered_map<std::uint64_t, Wire> wires_;
  std::vector<std::unique_ptr<UpdateMessagePool>> pools_;  // one per shard
  /// Per-shard delivery counters, cache-line padded: each shard thread
  /// bumps only its own.
  struct alignas(64) ShardCounter {
    std::uint64_t value = 0;
  };
  std::vector<ShardCounter> delivered_;
};

}  // namespace rfdnet::bgp
