#pragma once

#include <cstdint>

namespace rfdnet::bgp {

/// A destination prefix. The simulator does not model address bits; prefixes
/// are opaque identifiers, which is all BGP route selection and damping need.
using Prefix = std::uint32_t;

}  // namespace rfdnet::bgp
