#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace rfdnet::stats {

/// Zipf-distributed index sampler over {0, ..., n-1}: P(k) ∝ 1 / (k+1)^alpha.
///
/// Measurement studies of BGP instability consistently find heavy-tailed
/// per-prefix update rates — a small set of prefixes contributes most of the
/// churn while the tail flaps rarely. The full-table workload uses this to
/// pick which prefix flaps next, so damping state concentrates on the hot
/// head exactly as it does on a production RIB.
///
/// Sampling inverts the precomputed CDF by binary search (O(log n) per draw,
/// O(n) setup). Edge parameters degenerate cleanly:
///  - alpha = 0 is the uniform distribution;
///  - n = 1 always returns 0 and consumes *no* randomness, so a single-prefix
///    run replays byte-identically against code that never sampled at all.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `alpha` must be finite and >= 0.
  ZipfSampler(std::size_t n, double alpha);

  /// Next index in [0, n). Draws one uniform variate from `rng` — except for
  /// n = 1, which is deterministic and leaves the stream untouched.
  std::size_t sample(sim::Rng& rng) const;

  std::size_t size() const { return n_; }
  double alpha() const { return alpha_; }

  /// P(k), from the normalized mass table (tests / reporting).
  double probability(std::size_t k) const;

 private:
  std::size_t n_;
  double alpha_;
  std::vector<double> cdf_;  ///< cdf_[k] = P(X <= k); empty when n = 1
};

}  // namespace rfdnet::stats
