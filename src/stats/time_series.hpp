#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace rfdnet::stats {

/// Counts events into fixed-width time bins (the paper plots update series
/// in 5-second bins, Fig. 10 top row).
class TimeSeries {
 public:
  explicit TimeSeries(double bin_width_s = 5.0);

  void add(double t_s);
  void clear();

  double bin_width_s() const { return bin_width_s_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }

  /// Count in bin `i` (zero for bins past the end).
  std::uint64_t at(std::size_t i) const {
    return i < counts_.size() ? counts_[i] : 0;
  }
  /// Count in the bin containing time `t_s`.
  std::uint64_t at_time(double t_s) const;

  /// (bin start time, count) for every non-empty bin.
  std::vector<std::pair<double, std::uint64_t>> nonzero() const;

 private:
  double bin_width_s_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// An integer step function built from time-ordered +1/-1 deltas — used for
/// the "number of links being suppressed" curves (Fig. 10 bottom row).
class StepSeries {
 public:
  /// Appends a delta at time `t_s`. Times must be non-decreasing.
  void add(double t_s, int delta);
  void clear();

  bool empty() const { return deltas_.empty(); }
  std::size_t event_count() const { return deltas_.size(); }

  /// Value right after the last delta at or before `t_s`.
  int value_at(double t_s) const;
  int final_value() const;
  int max_value() const;
  /// Time of the last event, or 0 when empty.
  double last_time() const;

  /// The step function as (time, value-after) points.
  std::vector<std::pair<double, int>> steps() const;

 private:
  std::vector<std::pair<double, int>> deltas_;
};

}  // namespace rfdnet::stats
