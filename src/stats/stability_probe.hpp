#pragma once

#include "bgp/observer.hpp"
#include "obs/stability.hpp"

namespace rfdnet::stats {

/// Minimal observer that feeds a `StabilityTracker` from the router/damping
/// instrumentation points and records nothing else — the adapter the
/// full-table drivers attach (one per shard in sharded runs), where a full
/// `Recorder` would retain per-delivery vectors the 120k-prefix workloads
/// cannot afford. Times are forwarded as the engine's exact integer
/// microseconds, which is what makes the trace-replay oracle byte-exact.
class StabilityProbe final : public bgp::Observer {
 public:
  explicit StabilityProbe(obs::StabilityTracker* tracker)
      : tracker_(tracker) {}

  void on_send(net::NodeId from, net::NodeId to, const bgp::UpdateMessage& m,
               sim::SimTime t) override {
    tracker_->record_update(from, to, m.prefix, m.is_withdrawal(),
                            t.as_micros());
  }
  void on_suppress(net::NodeId node, net::NodeId peer, bgp::Prefix p, double,
                   sim::SimTime) override {
    tracker_->record_suppress(node, peer, p);
  }
  void on_reuse(net::NodeId node, net::NodeId peer, bgp::Prefix p, bool,
                sim::SimTime) override {
    tracker_->record_reuse(node, peer, p);
  }

 private:
  obs::StabilityTracker* tracker_;
};

}  // namespace rfdnet::stats
