#include "stats/recorder.hpp"

#include <algorithm>

namespace rfdnet::stats {

Recorder::Recorder(double bin_width_s)
    : bin_width_s_(bin_width_s), updates_(bin_width_s) {}

void Recorder::probe_penalty(net::NodeId node, std::optional<net::NodeId> peer) {
  probe_node_ = node;
  probe_peer_ = peer;
}

void Recorder::reset() {
  sent_ = 0;
  delivered_ = 0;
  dropped_ = 0;
  first_send_s_.reset();
  last_delivery_s_.reset();
  updates_.clear();
  delivery_times_.clear();
  damped_.clear();
  busy_.clear();
  reuses_.clear();
  suppressions_.clear();
  trace_.clear();
  penalty_events_.clear();
  update_log_.clear();
  max_penalty_ = 0.0;
}

void Recorder::on_send(net::NodeId from, net::NodeId to,
                       const bgp::UpdateMessage& m, sim::SimTime t) {
  ++sent_;
  if (!first_send_s_) first_send_s_ = t.as_seconds();
  busy_.emplace_back(t.as_seconds(), +1);
  if (stability_) {
    stability_->record_update(from, to, m.prefix, m.is_withdrawal(),
                              t.as_micros());
  }
}

void Recorder::on_deliver(net::NodeId from, net::NodeId to,
                          const bgp::UpdateMessage& m, sim::SimTime t) {
  ++delivered_;
  last_delivery_s_ = t.as_seconds();
  updates_.add(t.as_seconds());
  delivery_times_.push_back(t.as_seconds());
  busy_.emplace_back(t.as_seconds(), -1);
  if (record_updates_) {
    update_log_.push_back(UpdateRecord{t.as_seconds(), from, to, m.kind, m.rc});
  }
}

void Recorder::on_drop(net::NodeId, net::NodeId, const bgp::UpdateMessage&,
                       sim::SimTime t) {
  // A dropped update leaves the "in flight" set without being delivered.
  ++dropped_;
  busy_.emplace_back(t.as_seconds(), -1);
}

void Recorder::on_pending_change(net::NodeId, int delta, sim::SimTime t) {
  busy_.emplace_back(t.as_seconds(), delta);
}

void Recorder::on_penalty(net::NodeId node, net::NodeId peer, bgp::Prefix,
                          double penalty, sim::SimTime t) {
  max_penalty_ = std::max(max_penalty_, penalty);
  if (record_all_) {
    penalty_events_.push_back(PenaltyEvent{t.as_seconds(), node, peer, penalty});
  }
  if (probe_node_ && node == *probe_node_ &&
      (!probe_peer_ || peer == *probe_peer_)) {
    trace_.push_back(PenaltySample{t.as_seconds(), penalty});
  }
}

void Recorder::on_suppress(net::NodeId node, net::NodeId peer, bgp::Prefix p,
                           double penalty, sim::SimTime t) {
  suppressions_.push_back(SuppressEvent{t.as_seconds(), node, peer, penalty});
  damped_.add(t.as_seconds(), +1);
  if (stability_) stability_->record_suppress(node, peer, p);
}

void Recorder::on_reuse(net::NodeId node, net::NodeId peer, bgp::Prefix p,
                        bool noisy, sim::SimTime t) {
  reuses_.push_back(ReuseEvent{t.as_seconds(), node, peer, noisy});
  damped_.add(t.as_seconds(), -1);
  if (stability_) stability_->record_reuse(node, peer, p);
}

std::optional<double> Recorder::last_delivery_s() const {
  return last_delivery_s_;
}

std::optional<double> Recorder::first_send_s() const { return first_send_s_; }

std::uint64_t Recorder::noisy_reuse_count() const {
  return static_cast<std::uint64_t>(
      std::count_if(reuses_.begin(), reuses_.end(),
                    [](const ReuseEvent& e) { return e.noisy; }));
}

std::uint64_t Recorder::silent_reuse_count() const {
  return reuses_.size() - noisy_reuse_count();
}

}  // namespace rfdnet::stats
