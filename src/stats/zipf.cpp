#include "stats/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfdnet::stats {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (!std::isfinite(alpha) || alpha < 0.0) {
    throw std::invalid_argument("ZipfSampler: alpha must be finite and >= 0");
  }
  if (n == 1) return;  // deterministic; no table, no RNG draws
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // alpha = 0 gives mass 1 everywhere — the uniform distribution.
    total += std::pow(static_cast<double>(k + 1), -alpha);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(sim::Rng& rng) const {
  if (n_ == 1) return 0;
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  // u < 1 and cdf_.back() == 1, so `it` is always in range; upper-clamp
  // anyway for the u == 1 - ulp vs rounding interplay.
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return idx < n_ ? idx : n_ - 1;
}

double ZipfSampler::probability(std::size_t k) const {
  if (k >= n_) throw std::out_of_range("ZipfSampler: index out of range");
  if (n_ == 1) return 1.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace rfdnet::stats
