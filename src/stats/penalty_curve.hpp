#pragma once

#include <utility>
#include <vector>

namespace rfdnet::stats {

/// Reconstructs the continuous penalty-vs-time curve (Figs. 3 and 7) from
/// discrete post-update samples: between samples the penalty decays
/// exponentially with rate `lambda`; after the last sample it decays until
/// it drops below `floor` (or `until_s` is reached).
std::vector<std::pair<double, double>> sample_penalty_curve(
    const std::vector<std::pair<double, double>>& events, double lambda,
    double step_s, double until_s, double floor = 1.0);

}  // namespace rfdnet::stats
