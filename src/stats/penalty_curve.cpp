#include "stats/penalty_curve.hpp"

#include <cmath>
#include <stdexcept>

namespace rfdnet::stats {

std::vector<std::pair<double, double>> sample_penalty_curve(
    const std::vector<std::pair<double, double>>& events, double lambda,
    double step_s, double until_s, double floor) {
  if (step_s <= 0) throw std::invalid_argument("penalty curve: step <= 0");
  std::vector<std::pair<double, double>> out;
  if (events.empty()) return out;

  std::size_t next = 0;
  double t = events.front().first;
  double value = 0.0;
  double last_event_t = t;
  while (t <= until_s) {
    // Apply decay since the last anchor, then any events at or before t.
    while (next < events.size() && events[next].first <= t) {
      value = events[next].second;
      last_event_t = events[next].first;
      ++next;
    }
    const double decayed = value * std::exp(-lambda * (t - last_event_t));
    out.emplace_back(t, decayed);
    if (next >= events.size() && decayed < floor) break;
    t += step_s;
  }
  return out;
}

}  // namespace rfdnet::stats
