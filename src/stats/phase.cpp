#include "stats/phase.hpp"

#include <algorithm>

namespace rfdnet::stats {

std::string to_string(PhaseKind k) {
  switch (k) {
    case PhaseKind::kCharging:
      return "charging";
    case PhaseKind::kSuppression:
      return "suppression";
    case PhaseKind::kReleasing:
      return "releasing";
    case PhaseKind::kConverged:
      return "converged";
  }
  return "?";
}

namespace {

struct Interval {
  double t0, t1;
};

/// Busy intervals (counter > 0), merged across gaps shorter than `merge_gap`.
std::vector<Interval> busy_intervals(
    const std::vector<std::pair<double, int>>& deltas, double merge_gap) {
  std::vector<Interval> raw;
  int counter = 0;
  double open_at = 0.0;
  for (const auto& [t, d] : deltas) {
    const int before = counter;
    counter += d;
    if (before <= 0 && counter > 0) {
      open_at = t;
    } else if (before > 0 && counter <= 0) {
      raw.push_back(Interval{open_at, t});
    }
  }
  if (counter > 0 && !deltas.empty()) {
    raw.push_back(Interval{open_at, deltas.back().first});
  }

  std::vector<Interval> merged;
  for (const auto& iv : raw) {
    if (!merged.empty() && iv.t0 - merged.back().t1 < merge_gap) {
      merged.back().t1 = std::max(merged.back().t1, iv.t1);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace

std::vector<Phase> classify_phases(const PhaseInput& in) {
  std::vector<Phase> out;
  const auto busy = busy_intervals(in.busy_deltas, in.min_quiet_s);

  if (busy.empty()) {
    out.push_back(Phase{PhaseKind::kConverged, in.first_flap_s, in.first_flap_s});
    return out;
  }

  // Charging runs from the first flap until the network first goes quiet.
  const double charging_end = busy.front().t1;
  out.push_back(Phase{PhaseKind::kCharging, in.first_flap_s, charging_end});

  double cursor = charging_end;
  for (std::size_t i = 1; i < busy.size(); ++i) {
    // Quiet with more activity to come: a suppression period — some noisy
    // reuse timer is still pending and will start the next wave.
    out.push_back(Phase{PhaseKind::kSuppression, cursor, busy[i].t0});
    out.push_back(Phase{PhaseKind::kReleasing, busy[i].t0, busy[i].t1});
    cursor = busy[i].t1;
  }

  // Policy can make a noisy reuse produce no updates (§7); if noisy fires
  // remain after the last wave, the network is still "suppressed" until the
  // last of them resolves.
  double last_noisy = cursor;
  for (const auto& [t, noisy] : in.reuse_fires) {
    if (noisy && t > cursor) last_noisy = std::max(last_noisy, t);
  }
  if (last_noisy > cursor) {
    out.push_back(Phase{PhaseKind::kSuppression, cursor, last_noisy});
    cursor = last_noisy;
  }

  out.push_back(Phase{PhaseKind::kConverged, cursor, cursor});
  return out;
}

std::vector<Phase> coalesce_phases(const std::vector<Phase>& phases) {
  std::vector<Phase> out;
  bool seen_release = false;
  for (const Phase& ph : phases) {
    switch (ph.kind) {
      case PhaseKind::kCharging:
        out.push_back(ph);
        break;
      case PhaseKind::kSuppression:
      case PhaseKind::kReleasing:
        if (ph.kind == PhaseKind::kReleasing) seen_release = true;
        // Before the first release: suppression. From the first release on,
        // everything merges into one releasing span.
        if (!out.empty() &&
            out.back().kind ==
                (seen_release ? PhaseKind::kReleasing : PhaseKind::kSuppression)) {
          out.back().t1_s = ph.t1_s;
        } else {
          out.push_back(Phase{seen_release ? PhaseKind::kReleasing
                                           : PhaseKind::kSuppression,
                              ph.t0_s, ph.t1_s});
        }
        break;
      case PhaseKind::kConverged:
        out.push_back(ph);
        break;
    }
  }
  return out;
}

}  // namespace rfdnet::stats
