#include "stats/time_series.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfdnet::stats {

TimeSeries::TimeSeries(double bin_width_s) : bin_width_s_(bin_width_s) {
  if (bin_width_s <= 0) throw std::invalid_argument("TimeSeries: bin <= 0");
}

void TimeSeries::add(double t_s) {
  if (t_s < 0) throw std::invalid_argument("TimeSeries: negative time");
  const auto bin = static_cast<std::size_t>(t_s / bin_width_s_);
  if (bin >= counts_.size()) counts_.resize(bin + 1, 0);
  ++counts_[bin];
  ++total_;
}

void TimeSeries::clear() {
  counts_.clear();
  total_ = 0;
}

std::uint64_t TimeSeries::at_time(double t_s) const {
  if (t_s < 0) return 0;
  return at(static_cast<std::size_t>(t_s / bin_width_s_));
}

std::vector<std::pair<double, std::uint64_t>> TimeSeries::nonzero() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i]) out.emplace_back(static_cast<double>(i) * bin_width_s_,
                                     counts_[i]);
  }
  return out;
}

void StepSeries::add(double t_s, int delta) {
  if (!deltas_.empty() && t_s < deltas_.back().first) {
    throw std::invalid_argument("StepSeries: time went backwards");
  }
  deltas_.emplace_back(t_s, delta);
}

void StepSeries::clear() { deltas_.clear(); }

int StepSeries::value_at(double t_s) const {
  int v = 0;
  for (const auto& [t, d] : deltas_) {
    if (t > t_s) break;
    v += d;
  }
  return v;
}

int StepSeries::final_value() const {
  int v = 0;
  for (const auto& [t, d] : deltas_) v += d;
  return v;
}

int StepSeries::max_value() const {
  int v = 0, best = 0;
  for (const auto& [t, d] : deltas_) {
    v += d;
    best = std::max(best, v);
  }
  return best;
}

double StepSeries::last_time() const {
  return deltas_.empty() ? 0.0 : deltas_.back().first;
}

std::vector<std::pair<double, int>> StepSeries::steps() const {
  std::vector<std::pair<double, int>> out;
  out.reserve(deltas_.size());
  int v = 0;
  for (const auto& [t, d] : deltas_) {
    v += d;
    if (!out.empty() && out.back().first == t) {
      out.back().second = v;
    } else {
      out.emplace_back(t, v);
    }
  }
  return out;
}

}  // namespace rfdnet::stats
