#pragma once

#include <string>
#include <utility>
#include <vector>

namespace rfdnet::stats {

/// The four network-wide damping states of paper §4.1 (Fig. 4).
enum class PhaseKind : std::uint8_t {
  kCharging,     ///< updates in flight, penalties charging, since first flap
  kSuppression,  ///< quiet, but noisy reuse timers still pending
  kReleasing,    ///< reuse expirations are triggering update waves
  kConverged,    ///< quiet and no noisy reuse timer left
};

std::string to_string(PhaseKind k);

struct Phase {
  PhaseKind kind;
  double t0_s;
  double t1_s;  ///< end; for the final converged phase equals t0_s
  double duration() const { return t1_s - t0_s; }
};

struct PhaseInput {
  /// Time of the first flap (start of charging).
  double first_flap_s = 0.0;
  /// Time-ordered (+1/-1) deltas of "updates in transit or waiting to be
  /// sent" (from `Recorder::busy_deltas`).
  std::vector<std::pair<double, int>> busy_deltas;
  /// Reuse timer firings: (time, noisy).
  std::vector<std::pair<double, bool>> reuse_fires;
  /// A quiet gap shorter than this does not end a releasing period — the
  /// strict definitions would label every lull between two reuse
  /// expirations a new suppression state, which is technically true but not
  /// how the paper reads Fig. 10; the merge keeps phases legible.
  double min_quiet_s = 30.0;
};

/// Decomposes a simulation run into the four phases. The result always
/// starts with a charging phase at `first_flap_s` and ends with a converged
/// phase; suppression/releasing pairs alternate in between as reuse timers
/// fire and trigger secondary charging.
std::vector<Phase> classify_phases(const PhaseInput& in);

/// Collapses a fine-grained decomposition into the paper's Fig. 10(a) view:
/// one charging phase, one suppression phase (the first long quiet period),
/// one releasing phase spanning everything from the first reuse wave to the
/// last activity, then converged. Phases of other shapes (e.g. no
/// suppression at all) collapse naturally to fewer entries.
std::vector<Phase> coalesce_phases(const std::vector<Phase>& phases);

}  // namespace rfdnet::stats
