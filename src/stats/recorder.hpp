#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "bgp/observer.hpp"
#include "obs/stability.hpp"
#include "stats/time_series.hpp"

namespace rfdnet::stats {

/// Records everything the paper's figures are built from. Attach one
/// `Recorder` as the network observer; call `reset()` between the warm-up
/// and the measured flapping phase.
class Recorder final : public bgp::Observer {
 public:
  struct ReuseEvent {
    double t_s;
    net::NodeId node;
    net::NodeId peer;
    bool noisy;
  };
  struct SuppressEvent {
    double t_s;
    net::NodeId node;
    net::NodeId peer;
    double penalty;
  };
  struct PenaltySample {
    double t_s;
    double value;
  };
  struct PenaltyEvent {
    double t_s;
    net::NodeId node;
    net::NodeId peer;
    double value;
  };

  explicit Recorder(double bin_width_s = 5.0);

  /// Record penalty samples only for entries at `node` (from any peer); by
  /// default no penalty trace is kept. Used for Figs. 3 and 7.
  void probe_penalty(net::NodeId node, std::optional<net::NodeId> peer = {});

  /// Additionally keep every penalty event network-wide (entry-level audit).
  void record_all_penalties(bool on) { record_all_ = on; }
  const std::vector<PenaltyEvent>& penalty_events() const {
    return penalty_events_;
  }

  struct UpdateRecord {
    double t_s;
    net::NodeId from;
    net::NodeId to;
    bgp::UpdateKind kind;
    std::optional<rcn::RootCause> rc;
  };
  /// Additionally keep every delivered update (full wire audit).
  void record_update_log(bool on) { record_updates_ = on; }
  const std::vector<UpdateRecord>& update_log() const { return update_log_; }

  /// Forward send/suppress/reuse events into a streaming stability tracker
  /// alongside normal recording (the experiment drivers install one per
  /// run — or one per shard — when `collect_stability` is on). Unlike the
  /// recorder's own state the tracker spans the whole run, warm-up
  /// included, exactly like the JSONL trace it is oracle-checked against:
  /// `reset()` does not touch it.
  void set_stability(obs::StabilityTracker* tracker) { stability_ = tracker; }

  /// Clears all recorded data (damping/suppression deltas restart at the
  /// *current* suppressed count, which the caller should have reset too).
  void reset();

  // Observer:
  void on_send(net::NodeId from, net::NodeId to, const bgp::UpdateMessage& m,
               sim::SimTime t) override;
  void on_deliver(net::NodeId from, net::NodeId to,
                  const bgp::UpdateMessage& m, sim::SimTime t) override;
  void on_drop(net::NodeId from, net::NodeId to, const bgp::UpdateMessage& m,
               sim::SimTime t) override;
  void on_pending_change(net::NodeId node, int delta, sim::SimTime t) override;
  void on_penalty(net::NodeId node, net::NodeId peer, bgp::Prefix p,
                  double penalty, sim::SimTime t) override;
  void on_suppress(net::NodeId node, net::NodeId peer, bgp::Prefix p,
                   double penalty, sim::SimTime t) override;
  void on_reuse(net::NodeId node, net::NodeId peer, bgp::Prefix p, bool noisy,
                sim::SimTime t) override;

  // --- Metrics ---
  std::uint64_t sent_count() const { return sent_; }
  std::uint64_t delivered_count() const { return delivered_; }
  std::uint64_t dropped_count() const { return dropped_; }
  /// Time of the last update delivery, or nullopt if none recorded.
  std::optional<double> last_delivery_s() const;
  /// Time of the first send after the last reset.
  std::optional<double> first_send_s() const;

  /// Updates delivered, binned (Fig. 10 top row).
  const TimeSeries& update_series() const { return updates_; }
  /// Raw delivery instants, in order (for re-binning on a shifted origin).
  const std::vector<double>& delivery_times() const { return delivery_times_; }
  /// Suppressed-entry ("damped link") count over time (Fig. 10 bottom row).
  const StepSeries& damped_links() const { return damped_; }
  /// +1 on send/pending, -1 on deliver/flush: >0 means updates are in
  /// transit or waiting — the busy condition of the phase definitions.
  const std::vector<std::pair<double, int>>& busy_deltas() const {
    return busy_;
  }

  const std::vector<ReuseEvent>& reuse_events() const { return reuses_; }
  const std::vector<SuppressEvent>& suppress_events() const {
    return suppressions_;
  }
  const std::vector<PenaltySample>& penalty_trace() const { return trace_; }

  std::uint64_t noisy_reuse_count() const;
  std::uint64_t silent_reuse_count() const;
  std::uint64_t suppress_count() const { return suppressions_.size(); }

  /// Entries currently suppressed: suppress events minus reuse fires since
  /// the last `reset()` — the live level behind `damped_links()`, exposed as
  /// an integer so the telemetry sampler can probe it. Shard-legal: every
  /// suppress/reuse lands on the owning router's shard, so per-shard levels
  /// sum to the global level.
  std::int64_t damped_level() const {
    return static_cast<std::int64_t>(suppressions_.size()) -
           static_cast<std::int64_t>(reuses_.size());
  }

  /// Highest penalty value ever recorded anywhere in the network (used to
  /// check the paper's §5.2 claim that path exploration alone cannot come
  /// near the 12000 ceiling).
  double max_penalty_seen() const { return max_penalty_; }

 private:
  double bin_width_s_;
  std::optional<net::NodeId> probe_node_;
  std::optional<net::NodeId> probe_peer_;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::optional<double> first_send_s_;
  std::optional<double> last_delivery_s_;
  TimeSeries updates_;
  std::vector<double> delivery_times_;
  StepSeries damped_;
  std::vector<std::pair<double, int>> busy_;
  std::vector<ReuseEvent> reuses_;
  std::vector<SuppressEvent> suppressions_;
  std::vector<PenaltySample> trace_;
  bool record_all_ = false;
  std::vector<PenaltyEvent> penalty_events_;
  bool record_updates_ = false;
  std::vector<UpdateRecord> update_log_;
  double max_penalty_ = 0.0;
  obs::StabilityTracker* stability_ = nullptr;
};

}  // namespace rfdnet::stats
