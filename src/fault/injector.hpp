#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/network.hpp"
#include "fault/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace rfdnet::fault {

/// Replays a `FaultSchedule` against a running `BgpNetwork` through the
/// event engine, so faults interleave deterministically with the BGP
/// workload and a (config, seed) pair always produces the same run.
///
/// Link state is reference-counted: each link-down-style fault takes a
/// *hold* on the link and its later release drops the hold; the underlying
/// `BgpNetwork::set_link` only fires on the 0 -> 1 and 1 -> 0 hold
/// transitions. Overlapping faults (a restart spanning a link flap on an
/// incident link, two storms hitting the same link) therefore compose
/// without ever "upping" a link some other fault still needs down.
///
/// A router restart holds every incident link (both BGP endpoints see the
/// session die, the restarting router loses all learned routes via implicit
/// withdrawals) and flushes the router's damping state — a restarted router
/// forgets its penalties. The release re-establishes all sessions and both
/// sides re-advertise, which is exactly the RIB-flush + re-announce cycle.
///
/// Perturbation windows install a per-message hook on the network that
/// drops each newly transmitted update with `drop_prob` or stretches its
/// flight time by U(0, extra_delay_s), drawn from the injector's own PRNG
/// stream (deterministic: transmissions occur in event order).
class FaultInjector {
 public:
  /// `network` and `engine` must outlive the injector. `rng` is consumed by
  /// value: the injector owns an independent stream (`Rng::split` one off
  /// the trial's stream) so perturbation draws never shift the draws of the
  /// surrounding experiment.
  FaultInjector(bgp::BgpNetwork& network, sim::Engine& engine, sim::Rng rng);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Validates `schedule` against the network's graph (endpoints in range,
  /// links exist) and schedules every event at `origin + event.t_s`. May be
  /// called once per injector. Installs the network perturbation hook if
  /// the schedule contains perturb events.
  void arm(const FaultSchedule& schedule, sim::SimTime origin);

  /// Fault events applied so far (releases are not counted separately).
  std::uint64_t injected() const { return injected_; }
  std::uint64_t perturb_drops() const { return perturb_drops_; }
  std::uint64_t perturb_delays() const { return perturb_delays_; }
  /// Links currently held down by at least one fault.
  int held_links() const { return static_cast<int>(holds_.size()); }
  /// Whether any perturbation window is currently open.
  bool perturb_active() const { return !windows_.empty(); }

  /// Attaches (or detaches, with nullptr) a metrics bundle / trace sink.
  /// Not owned.
  void set_metrics(obs::FaultMetrics* m);
  void set_trace(obs::TraceSink* t) { trace_ = t; }

  /// Attaches (or detaches) the causal span tracer: every applied fault
  /// mints a root span, and the updates the fault triggers (session churn,
  /// re-advertisements) parent on it. Not owned.
  void set_span_tracer(obs::SpanTracer* t) { spans_ = t; }

  /// Audit: every hold count is positive, the held-links gauge matches, and
  /// any outstanding hold or open perturbation window has a live release
  /// event still pending (nothing the injector took down can be stranded
  /// down). Throws `obs::InvariantViolation` on breakage; always runs.
  void check_invariants() const;

 private:
  static std::uint64_t link_key(net::NodeId u, net::NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  void apply(const FaultEvent& ev);
  void hold_link(net::NodeId u, net::NodeId v);
  void release_link(net::NodeId u, net::NodeId v);
  void schedule(sim::SimTime when, std::function<void()> fn);
  void trace_inject(const char* kind, net::NodeId u, net::NodeId v);
  bgp::BgpNetwork::Perturbation perturb_decision(net::NodeId from, net::NodeId to);

  struct Window {
    std::uint64_t id = 0;              ///< ordinal, for deterministic removal
    net::NodeId u = net::kInvalidNode; ///< kInvalidNode: applies to all links
    net::NodeId v = net::kInvalidNode;
    double drop_prob = 0.0;
    double extra_delay_s = 0.0;
  };

  bgp::BgpNetwork& network_;
  sim::Engine& engine_;
  sim::Rng rng_;
  obs::FaultMetrics* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;

  bool armed_ = false;
  std::vector<sim::EventId> pending_;              ///< all scheduled fault events
  std::unordered_map<std::uint64_t, int> holds_;   ///< link key -> hold count
  std::vector<Window> windows_;                    ///< open perturbation windows
  std::uint64_t next_window_id_ = 0;

  std::uint64_t injected_ = 0;
  std::uint64_t perturb_drops_ = 0;
  std::uint64_t perturb_delays_ = 0;
};

}  // namespace rfdnet::fault
