#include "fault/schedule.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>

namespace rfdnet::fault {

namespace {

// Compact numeric literal for the schedule grammar. %.9g keeps short
// hand-written values short ("0.1", "120") and is stable under a second
// parse/print round trip.
std::string fmt_num(double x) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  return buf;
}

[[noreturn]] void parse_fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("fault schedule: " + what + " (at offset " +
                              std::to_string(pos) + ")");
}

/// Minimal hand tokenizer over one statement of the grammar.
class Cursor {
 public:
  Cursor(std::string_view text, std::size_t base) : text_(text), base_(base) {}

  void skip_ws() {
    while (i_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[i_]))) ++i_;
  }
  bool done() {
    skip_ws();
    return i_ >= text_.size();
  }
  std::size_t offset() const { return base_ + i_; }

  bool eat(char c) {
    skip_ws();
    if (i_ < text_.size() && text_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  /// Next run of token characters (alnum, '-', '_', '.', '='); empty at end.
  /// '-' is a token character so "link-down" and "2-3" each lex as one word.
  std::string_view word() {
    skip_ws();
    const std::size_t start = i_;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
          c == '.' || c == '=' || c == '+') {
        ++i_;
      } else {
        break;
      }
    }
    return text_.substr(start, i_ - start);
  }

  double number() {
    skip_ws();
    const std::size_t start = i_;
    const std::string w{word()};
    if (w.empty()) parse_fail(base_ + start, "expected a number");
    try {
      std::size_t used = 0;
      const double v = std::stod(w, &used);
      if (used != w.size()) throw std::invalid_argument(w);
      return v;
    } catch (const std::exception&) {
      parse_fail(base_ + start, "bad number '" + w + "'");
    }
  }

 private:
  std::string_view text_;
  std::size_t base_;
  std::size_t i_ = 0;
};

/// Parses "U-V" into endpoints.
void parse_link(std::string_view w, std::size_t pos, FaultEvent& ev) {
  const auto dash = w.find('-');
  if (dash == std::string_view::npos || dash == 0 || dash + 1 >= w.size()) {
    parse_fail(pos, "expected a link 'U-V', got '" + std::string(w) + "'");
  }
  try {
    ev.u = static_cast<net::NodeId>(std::stoul(std::string(w.substr(0, dash))));
    ev.v = static_cast<net::NodeId>(std::stoul(std::string(w.substr(dash + 1))));
  } catch (const std::exception&) {
    parse_fail(pos, "bad link endpoints '" + std::string(w) + "'");
  }
}

FaultEvent parse_statement(std::string_view stmt, std::size_t base) {
  Cursor cur(stmt, base);
  FaultEvent ev;
  if (!cur.eat('@')) parse_fail(cur.offset(), "statement must start with '@TIME'");
  ev.t_s = cur.number();

  const std::size_t kind_pos = cur.offset();
  const std::string kind{cur.word()};
  bool need_link = false;
  bool link_optional = false;
  bool need_node = false;
  if (kind == "link-down") {
    ev.kind = FaultKind::kLinkDown;
    need_link = true;
  } else if (kind == "link-up") {
    ev.kind = FaultKind::kLinkUp;
    need_link = true;
  } else if (kind == "link-flap") {
    ev.kind = FaultKind::kLinkFlap;
    need_link = true;
  } else if (kind == "reset") {
    ev.kind = FaultKind::kSessionReset;
    need_link = true;
  } else if (kind == "restart") {
    ev.kind = FaultKind::kRouterRestart;
    need_node = true;
  } else if (kind == "perturb") {
    ev.kind = FaultKind::kPerturb;
    link_optional = true;
  } else {
    parse_fail(kind_pos, "unknown fault kind '" + kind + "'");
  }

  if (need_node) {
    ev.u = static_cast<net::NodeId>(cur.number());
    ev.v = ev.u;
  } else if (need_link || link_optional) {
    const std::size_t pos = cur.offset();
    const std::string_view w = cur.word();
    if (w == "for") {
      // "perturb for DUR ..." — global window, no link argument.
      if (!link_optional) parse_fail(pos, "expected a link 'U-V'");
      ev.duration_s = cur.number();
    } else if (!w.empty()) {
      parse_link(w, pos, ev);
    } else if (!link_optional) {
      parse_fail(pos, "expected a link 'U-V'");
    }
  }

  // Trailing clauses: "for DUR", "drop=P", "delay=D" (any order).
  while (!cur.done()) {
    const std::size_t pos = cur.offset();
    const std::string w{cur.word()};
    if (w == "for") {
      ev.duration_s = cur.number();
    } else if (w.rfind("drop=", 0) == 0 || w.rfind("delay=", 0) == 0) {
      if (ev.kind != FaultKind::kPerturb) {
        parse_fail(pos, "'" + w + "' is only valid for perturb");
      }
      const auto eq = w.find('=');
      double val = 0.0;
      try {
        std::size_t used = 0;
        val = std::stod(w.substr(eq + 1), &used);
        if (used != w.size() - eq - 1) throw std::invalid_argument(w);
      } catch (const std::exception&) {
        parse_fail(pos, "bad value in '" + w + "'");
      }
      if (w[1] == 'r') {  // drop=
        ev.drop_prob = val;
      } else {
        ev.extra_delay_s = val;
      }
    } else if (w.empty()) {
      parse_fail(pos, "unexpected character '" + std::string(1, stmt[pos - base]) + "'");
    } else {
      parse_fail(pos, "unexpected token '" + w + "'");
    }
  }
  return ev;
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kSessionReset: return "reset";
    case FaultKind::kRouterRestart: return "restart";
    case FaultKind::kPerturb: return "perturb";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::string s = "@" + fmt_num(t_s) + " " + fault::to_string(kind);
  switch (kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      s += " " + std::to_string(u) + "-" + std::to_string(v);
      break;
    case FaultKind::kLinkFlap:
    case FaultKind::kSessionReset:
      s += " " + std::to_string(u) + "-" + std::to_string(v);
      s += " for " + fmt_num(duration_s);
      break;
    case FaultKind::kRouterRestart:
      s += " " + std::to_string(u);
      s += " for " + fmt_num(duration_s);
      break;
    case FaultKind::kPerturb:
      if (u != net::kInvalidNode) {
        s += " " + std::to_string(u) + "-" + std::to_string(v);
      }
      s += " for " + fmt_num(duration_s);
      if (drop_prob > 0.0) s += " drop=" + fmt_num(drop_prob);
      if (extra_delay_s > 0.0) s += " delay=" + fmt_num(extra_delay_s);
      break;
  }
  return s;
}

double FaultSchedule::stop_time_s() const {
  double stop = 0.0;
  for (const FaultEvent& ev : events) {
    stop = std::max(stop, ev.t_s + ev.duration_s);
  }
  return stop;
}

void FaultSchedule::validate() const {
  double prev = 0.0;
  for (const FaultEvent& ev : events) {
    if (!std::isfinite(ev.t_s) || ev.t_s < 0.0) {
      throw std::invalid_argument("fault schedule: event time must be finite and >= 0");
    }
    if (ev.t_s < prev) {
      throw std::invalid_argument("fault schedule: events must be sorted by time");
    }
    prev = ev.t_s;
    if (!std::isfinite(ev.duration_s) || ev.duration_s < 0.0) {
      throw std::invalid_argument("fault schedule: duration must be finite and >= 0");
    }
    if (ev.drop_prob < 0.0 || ev.drop_prob > 1.0) {
      throw std::invalid_argument("fault schedule: drop probability must be in [0, 1]");
    }
    if (!std::isfinite(ev.extra_delay_s) || ev.extra_delay_s < 0.0) {
      throw std::invalid_argument("fault schedule: extra delay must be finite and >= 0");
    }
    const bool link_fault = ev.kind == FaultKind::kLinkDown ||
                            ev.kind == FaultKind::kLinkUp ||
                            ev.kind == FaultKind::kLinkFlap ||
                            ev.kind == FaultKind::kSessionReset;
    if (link_fault) {
      if (ev.u == net::kInvalidNode || ev.v == net::kInvalidNode || ev.u == ev.v) {
        throw std::invalid_argument("fault schedule: link fault needs two distinct endpoints");
      }
    }
    if (ev.kind == FaultKind::kRouterRestart && ev.u == net::kInvalidNode) {
      throw std::invalid_argument("fault schedule: restart needs a node");
    }
    if (ev.kind == FaultKind::kPerturb &&
        ev.drop_prob == 0.0 && ev.extra_delay_s == 0.0) {
      throw std::invalid_argument("fault schedule: perturb needs drop= and/or delay=");
    }
  }
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += "; ";
    out += ev.to_string();
  }
  return out;
}

FaultSchedule FaultSchedule::parse(const std::string& text) {
  FaultSchedule sched;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    std::string_view stmt{text.data() + start, end - start};
    // Skip blank statements (trailing ';' etc).
    const bool blank = stmt.find_first_not_of(" \t\r\n") == std::string_view::npos;
    if (!blank) sched.events.push_back(parse_statement(stmt, start));
    if (end == text.size()) break;
    start = end + 1;
  }
  std::stable_sort(sched.events.begin(), sched.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.t_s < b.t_s; });
  sched.validate();
  return sched;
}

void StormOptions::validate() const {
  if (!(rate_per_s > 0.0) || !std::isfinite(rate_per_s)) {
    throw std::invalid_argument("StormOptions: rate_per_s must be > 0");
  }
  if (!(horizon_s > 0.0) || !std::isfinite(horizon_s)) {
    throw std::invalid_argument("StormOptions: horizon_s must be > 0");
  }
  if (!(mean_down_s > 0.0) || !std::isfinite(mean_down_s)) {
    throw std::invalid_argument("StormOptions: mean_down_s must be > 0");
  }
  const double wsum = w_link_flap + w_session_reset + w_router_restart + w_perturb;
  if (w_link_flap < 0.0 || w_session_reset < 0.0 || w_router_restart < 0.0 ||
      w_perturb < 0.0 || !(wsum > 0.0)) {
    throw std::invalid_argument("StormOptions: mix weights must be >= 0 and not all zero");
  }
  if (drop_prob < 0.0 || drop_prob > 1.0) {
    throw std::invalid_argument("StormOptions: drop_prob must be in [0, 1]");
  }
  if (extra_delay_s < 0.0 || !std::isfinite(extra_delay_s)) {
    throw std::invalid_argument("StormOptions: extra_delay_s must be >= 0");
  }
}

FaultSchedule generate_storm(const net::Graph& g, const StormOptions& opt,
                             sim::Rng& rng,
                             const std::vector<net::NodeId>& spare) {
  opt.validate();
  const auto spared = [&spare](net::NodeId n) {
    return std::find(spare.begin(), spare.end(), n) != spare.end();
  };

  // Candidate targets, in canonical order so the draw sequence depends only
  // on (graph, options, rng state).
  std::vector<std::pair<net::NodeId, net::NodeId>> links;
  std::vector<net::NodeId> nodes;
  for (net::NodeId u = 0; u < g.node_count(); ++u) {
    if (!spared(u)) nodes.push_back(u);
    for (const auto& e : g.neighbors(u)) {
      if (u < e.neighbor && !spared(u) && !spared(e.neighbor)) {
        links.emplace_back(u, e.neighbor);
      }
    }
  }
  if (links.empty() || nodes.empty()) {
    throw std::invalid_argument("generate_storm: graph has no eligible targets");
  }

  const double wsum =
      opt.w_link_flap + opt.w_session_reset + opt.w_router_restart + opt.w_perturb;
  const auto exp_draw = [&rng](double mean) {
    // Inverse-CDF; uniform01() is in [0, 1), so the log argument stays > 0.
    return -std::log(1.0 - rng.uniform01()) * mean;
  };

  FaultSchedule sched;
  double t = 0.0;
  while (true) {
    t += exp_draw(1.0 / opt.rate_per_s);
    if (t >= opt.horizon_s) break;
    FaultEvent ev;
    ev.t_s = t;
    ev.duration_s = exp_draw(opt.mean_down_s);
    const double pick = rng.uniform(0.0, wsum);
    if (pick < opt.w_link_flap) {
      ev.kind = FaultKind::kLinkFlap;
    } else if (pick < opt.w_link_flap + opt.w_session_reset) {
      ev.kind = FaultKind::kSessionReset;
    } else if (pick < opt.w_link_flap + opt.w_session_reset + opt.w_router_restart) {
      ev.kind = FaultKind::kRouterRestart;
    } else {
      ev.kind = FaultKind::kPerturb;
    }
    switch (ev.kind) {
      case FaultKind::kLinkFlap:
      case FaultKind::kSessionReset: {
        const auto [u, v] = links[rng.uniform_index(links.size())];
        ev.u = u;
        ev.v = v;
        break;
      }
      case FaultKind::kRouterRestart:
        ev.u = nodes[rng.uniform_index(nodes.size())];
        ev.v = ev.u;
        break;
      case FaultKind::kPerturb:
        ev.drop_prob = opt.drop_prob;
        ev.extra_delay_s = opt.extra_delay_s;
        break;
      default:
        break;
    }
    if (ev.kind == FaultKind::kPerturb &&
        ev.drop_prob == 0.0 && ev.extra_delay_s == 0.0) {
      continue;  // storm configured with no perturbation effect: skip
    }
    sched.events.push_back(ev);
  }
  sched.validate();
  return sched;
}

FaultSchedule FaultPlan::materialize(const net::Graph& g, sim::Rng& rng,
                                     const std::vector<net::NodeId>& spare) const {
  if (script.has_value() == storm.has_value()) {
    throw std::invalid_argument("FaultPlan: exactly one of script/storm must be set");
  }
  if (script) return FaultSchedule::parse(*script);
  return generate_storm(g, *storm, rng, spare);
}

}  // namespace rfdnet::fault
