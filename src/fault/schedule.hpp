#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "sim/random.hpp"

namespace rfdnet::fault {

/// What a single fault event does when it fires. Link faults operate on the
/// undirected link {u, v}; node faults use `u` only.
enum class FaultKind : std::uint8_t {
  kLinkDown,       ///< take {u,v} down (one hold; see FaultInjector)
  kLinkUp,         ///< release one hold on {u,v}
  kLinkFlap,       ///< down now, released after `duration_s`
  kSessionReset,   ///< BGP session bounce: down + up after `duration_s`
  kRouterRestart,  ///< node u: all sessions down + damping flush, up after
                   ///< `duration_s`
  kPerturb,        ///< for `duration_s`, messages are dropped with
                   ///< `drop_prob` or delayed by U(0, extra_delay_s)
};

/// Schedule-grammar keyword for `kind` ("link-down", "restart", ...).
std::string to_string(FaultKind kind);

/// One scheduled fault. Times are relative to the injection origin (the
/// first-flap instant t0 in `run_experiment`).
struct FaultEvent {
  double t_s = 0.0;
  FaultKind kind = FaultKind::kLinkFlap;
  net::NodeId u = net::kInvalidNode;
  net::NodeId v = net::kInvalidNode;  ///< kInvalidNode for node/global faults
  double duration_s = 0.0;
  double drop_prob = 0.0;       ///< kPerturb only
  double extra_delay_s = 0.0;   ///< kPerturb only

  /// One statement of the schedule grammar (no trailing ';').
  std::string to_string() const;
};

/// A deterministic fault schedule: a time-ordered list of fault events.
///
/// Text form (the `--fault-schedule` grammar; statements separated by ';',
/// whitespace-insensitive, times in seconds after injection start):
///
///   @T link-down U-V
///   @T link-up U-V
///   @T link-flap U-V for DUR
///   @T reset U-V [for DUR]
///   @T restart U [for DUR]
///   @T perturb [U-V] for DUR [drop=P] [delay=D]
///
/// Example: "@60 link-flap 2-3 for 30; @120 restart 7 for 10;
///           @200 perturb for 60 drop=0.1 delay=0.05".
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }

  /// Last instant at which any event is still acting (t_s + duration_s);
  /// 0 for an empty schedule.
  double stop_time_s() const;

  /// Structural validation: finite non-negative times/durations, probability
  /// in [0, 1], endpoints present where the kind requires them, events
  /// sorted by time. Throws `std::invalid_argument` on violation. Link
  /// existence is checked against the actual graph by `FaultInjector::arm`.
  void validate() const;

  /// Round-trips with `parse`.
  std::string to_string() const;

  /// Parses the grammar above. Throws `std::invalid_argument` with a
  /// position-annotated message on malformed input. Statements may appear in
  /// any time order; the result is stably sorted by time.
  static FaultSchedule parse(const std::string& text);
};

/// Knobs for randomized fault storms (`generate_storm`). Fault arrivals are
/// a Poisson process of `rate_per_s` over [0, horizon_s); each arrival picks
/// a kind by the mix weights, a uniform target, and an Exp(mean_down_s)
/// outage duration — all from the caller's PRNG, so a (graph, options,
/// seed) triple always yields the same schedule.
struct StormOptions {
  double rate_per_s = 0.01;
  double horizon_s = 600.0;
  double mean_down_s = 30.0;

  // Relative mix weights (need not sum to 1; all-zero is invalid).
  double w_link_flap = 1.0;
  double w_session_reset = 1.0;
  double w_router_restart = 0.25;
  double w_perturb = 0.25;

  // Perturbation windows drawn by the storm.
  double drop_prob = 0.05;
  double extra_delay_s = 0.05;

  void validate() const;
};

/// Draws a random fault storm against `g`. Every outage is finite (the
/// storm always releases what it holds), so a connected graph is connected
/// again once the schedule has fully played out. Nodes listed in `spare`
/// are never restarted and their incident links are never taken down —
/// `run_experiment` spares the origin AS so the flap workload stays in
/// charge of origin-link instability.
FaultSchedule generate_storm(const net::Graph& g, const StormOptions& opt,
                             sim::Rng& rng,
                             const std::vector<net::NodeId>& spare = {});

/// Declarative fault workload carried by `ExperimentConfig`: either a
/// scripted schedule (grammar above) or a randomized storm. Exactly one of
/// the two must be set.
struct FaultPlan {
  std::optional<std::string> script;
  std::optional<StormOptions> storm;

  /// Resolves the plan against a concrete graph: parses `script` or draws
  /// the storm from `rng`.
  FaultSchedule materialize(const net::Graph& g, sim::Rng& rng,
                            const std::vector<net::NodeId>& spare = {}) const;
};

}  // namespace rfdnet::fault
