#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/invariant.hpp"

namespace rfdnet::fault {

namespace {

/// Span-kind literal per fault kind (span records keep the pointer, so it
/// must be a string literal, not `to_string(...).c_str()`).
const char* span_kind(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown:
      return "fault.link-down";
    case FaultKind::kLinkUp:
      return "fault.link-up";
    case FaultKind::kLinkFlap:
      return "fault.link-flap";
    case FaultKind::kSessionReset:
      return "fault.session-reset";
    case FaultKind::kRouterRestart:
      return "fault.restart";
    case FaultKind::kPerturb:
      return "fault.perturb";
  }
  return "fault";
}

}  // namespace

FaultInjector::FaultInjector(bgp::BgpNetwork& network, sim::Engine& engine,
                             sim::Rng rng)
    : network_(network), engine_(engine), rng_(rng) {}

FaultInjector::~FaultInjector() {
  for (const sim::EventId id : pending_) engine_.cancel(id);
  network_.set_perturbation(nullptr);
}

void FaultInjector::set_metrics(obs::FaultMetrics* m) {
  metrics_ = m;
  if (metrics_ && metrics_->held_links) {
    metrics_->held_links->set(static_cast<std::int64_t>(holds_.size()));
  }
}

void FaultInjector::arm(const FaultSchedule& sched, sim::SimTime origin) {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  sched.validate();
  const net::Graph& g = network_.graph();
  bool any_perturb = false;
  for (const FaultEvent& ev : sched.events) {
    switch (ev.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kLinkFlap:
      case FaultKind::kSessionReset:
        if (ev.u >= g.node_count() || ev.v >= g.node_count() ||
            !g.has_link(ev.u, ev.v)) {
          throw std::invalid_argument("FaultInjector: no such link " +
                                      std::to_string(ev.u) + "-" +
                                      std::to_string(ev.v));
        }
        break;
      case FaultKind::kRouterRestart:
        if (ev.u >= g.node_count()) {
          throw std::invalid_argument("FaultInjector: no such node " +
                                      std::to_string(ev.u));
        }
        break;
      case FaultKind::kPerturb:
        if (ev.u != net::kInvalidNode &&
            (ev.u >= g.node_count() || ev.v >= g.node_count() ||
             !g.has_link(ev.u, ev.v))) {
          throw std::invalid_argument("FaultInjector: no such link " +
                                      std::to_string(ev.u) + "-" +
                                      std::to_string(ev.v));
        }
        any_perturb = true;
        break;
    }
  }
  armed_ = true;
  if (any_perturb) {
    network_.set_perturbation([this](net::NodeId from, net::NodeId to) {
      return perturb_decision(from, to);
    });
  }
  for (const FaultEvent& ev : sched.events) {
    schedule(origin + sim::Duration::seconds(ev.t_s), [this, ev] { apply(ev); });
  }
}

void FaultInjector::schedule(sim::SimTime when, std::function<void()> fn) {
  pending_.push_back(
      engine_.schedule_at(when, std::move(fn), sim::EventKind::kFault));
}

void FaultInjector::trace_inject(const char* kind, net::NodeId u, net::NodeId v) {
  if (trace_) trace_->fault_inject(engine_.now().as_seconds(), kind, u, v);
}

void FaultInjector::apply(const FaultEvent& ev) {
  ++injected_;
  if (metrics_ && metrics_->injected) metrics_->injected->inc();
  trace_inject(to_string(ev.kind).c_str(), ev.u,
               ev.kind == FaultKind::kRouterRestart ? ev.u : ev.v);
  // Every applied fault is a causal root: the session churn it triggers
  // below runs under it, so derived updates parent on this span.
  obs::SpanContext root;
  if (spans_) {
    root = spans_->root(span_kind(ev.kind), engine_.now().as_seconds(), ev.u,
                        ev.kind == FaultKind::kRouterRestart ? ev.u : ev.v, 0);
  }
  const obs::ActiveSpan span_guard(spans_, root);
  switch (ev.kind) {
    case FaultKind::kLinkDown:
      hold_link(ev.u, ev.v);
      break;
    case FaultKind::kLinkUp:
      release_link(ev.u, ev.v);
      break;
    case FaultKind::kLinkFlap:
    case FaultKind::kSessionReset: {
      hold_link(ev.u, ev.v);
      const net::NodeId u = ev.u, v = ev.v;
      schedule(engine_.now() + sim::Duration::seconds(ev.duration_s),
               [this, u, v, root] {
                 trace_inject("link-up", u, v);
                 obs::SpanContext rel;
                 if (spans_) {
                   rel = spans_->child_instant(root, "fault.release",
                                               engine_.now().as_seconds(), u,
                                               v, 0);
                 }
                 const obs::ActiveSpan guard(spans_, rel);
                 release_link(u, v);
               });
      break;
    }
    case FaultKind::kRouterRestart: {
      const net::NodeId u = ev.u;
      // Hold every incident session: both sides see the peering die, and
      // the restarting router sheds all learned routes via the implicit
      // withdrawals of its own session_down calls.
      for (const auto& e : network_.graph().neighbors(u)) {
        hold_link(u, e.neighbor);
      }
      // A restarted router comes back with empty damping state.
      if (bgp::DampingHook* d = network_.router(u).damping()) d->reset();
      if (metrics_ && metrics_->restarts) metrics_->restarts->inc();
      schedule(engine_.now() + sim::Duration::seconds(ev.duration_s),
               [this, u, root] {
                 trace_inject("restart-up", u, u);
                 obs::SpanContext rel;
                 if (spans_) {
                   rel = spans_->child_instant(root, "fault.release",
                                               engine_.now().as_seconds(), u,
                                               u, 0);
                 }
                 const obs::ActiveSpan guard(spans_, rel);
                 for (const auto& e : network_.graph().neighbors(u)) {
                   release_link(u, e.neighbor);
                 }
               });
      break;
    }
    case FaultKind::kPerturb: {
      Window w;
      w.id = next_window_id_++;
      w.u = ev.u;
      w.v = ev.v;
      w.drop_prob = ev.drop_prob;
      w.extra_delay_s = ev.extra_delay_s;
      windows_.push_back(w);
      const std::uint64_t id = w.id;
      schedule(engine_.now() + sim::Duration::seconds(ev.duration_s),
               [this, id] {
                 windows_.erase(
                     std::remove_if(windows_.begin(), windows_.end(),
                                    [id](const Window& x) { return x.id == id; }),
                     windows_.end());
               });
      break;
    }
  }
}

void FaultInjector::hold_link(net::NodeId u, net::NodeId v) {
  int& count = holds_[link_key(u, v)];
  if (count == 0) {
    network_.set_link(u, v, false);
    if (metrics_ && metrics_->link_downs) metrics_->link_downs->inc();
  }
  ++count;
  if (metrics_ && metrics_->held_links) {
    metrics_->held_links->set(static_cast<std::int64_t>(holds_.size()));
  }
}

void FaultInjector::release_link(net::NodeId u, net::NodeId v) {
  const auto it = holds_.find(link_key(u, v));
  if (it == holds_.end()) return;  // scripted link-up with no matching hold
  if (--it->second == 0) {
    holds_.erase(it);
    network_.set_link(u, v, true);
    if (metrics_ && metrics_->link_ups) metrics_->link_ups->inc();
  }
  if (metrics_ && metrics_->held_links) {
    metrics_->held_links->set(static_cast<std::int64_t>(holds_.size()));
  }
}

bgp::BgpNetwork::Perturbation FaultInjector::perturb_decision(net::NodeId from,
                                                              net::NodeId to) {
  bgp::BgpNetwork::Perturbation out;
  for (const Window& w : windows_) {
    if (w.u != net::kInvalidNode &&
        link_key(w.u, w.v) != link_key(from, to)) {
      continue;
    }
    // Draw order is fixed (drop first, then delay) so the PRNG stream is a
    // pure function of the transmission sequence.
    if (w.drop_prob > 0.0 && rng_.bernoulli(w.drop_prob)) {
      ++perturb_drops_;
      if (metrics_ && metrics_->perturb_drops) metrics_->perturb_drops->inc();
      if (trace_) {
        trace_->fault_perturb(engine_.now().as_seconds(), from, to, true, 0.0);
      }
      out.drop = true;
      return out;
    }
    if (w.extra_delay_s > 0.0) {
      const double extra = rng_.uniform(0.0, w.extra_delay_s);
      out.extra_delay_s += extra;
      ++perturb_delays_;
      if (metrics_ && metrics_->perturb_delays) metrics_->perturb_delays->inc();
      if (trace_) {
        trace_->fault_perturb(engine_.now().as_seconds(), from, to, false, extra);
      }
    }
  }
  return out;
}

void FaultInjector::check_invariants() const {
  std::size_t live = 0;
  for (const sim::EventId id : pending_) {
    if (engine_.is_pending(id)) ++live;
  }
  for (const auto& [key, count] : holds_) {
    RFDNET_INVARIANT(count > 0, "fault: non-positive hold count for a held link");
  }
  if (!holds_.empty() || !windows_.empty()) {
    RFDNET_INVARIANT(live > 0,
                     "fault: link held down or perturb window open with no "
                     "pending release event");
  }
}

}  // namespace rfdnet::fault
