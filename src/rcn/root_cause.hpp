#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/types.hpp"

namespace rfdnet::rcn {

/// Root Cause Notification attribute (paper §6.1):
///   RC = {[u v], status, seq_num}
/// [u v] is the link whose status change triggered the update, `up` its new
/// status, and `seq` the per-link sequence number that orders root causes.
/// Every update triggered (directly or through path exploration / route
/// reuse) by the same link event carries the same RC.
struct RootCause {
  net::NodeId u = net::kInvalidNode;
  net::NodeId v = net::kInvalidNode;
  bool up = false;
  std::uint64_t seq = 0;

  friend bool operator==(const RootCause&, const RootCause&) = default;

  std::string to_string() const;
};

struct RootCauseHash {
  std::size_t operator()(const RootCause& rc) const {
    // Mix the fields with distinct odd multipliers; quality only matters for
    // hash-table dispersion.
    std::uint64_t h = rc.seq * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<std::uint64_t>(rc.u) << 32 | rc.v) * 0xc2b2ae3d27d4eb4fULL;
    h ^= rc.up ? 0x165667b19e3779f9ULL : 0;
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};

/// Issues per-link sequence numbers for root causes originated by one node.
/// The node that detects a local link status change calls `next()` and
/// attaches the result to the update it emits.
class RootCauseSource {
 public:
  RootCauseSource(net::NodeId self, net::NodeId neighbor)
      : self_(self), neighbor_(neighbor) {}

  RootCause next(bool up) {
    return RootCause{self_, neighbor_, up, ++seq_};
  }

  std::uint64_t last_seq() const { return seq_; }

 private:
  net::NodeId self_;
  net::NodeId neighbor_;
  std::uint64_t seq_ = 0;
};

}  // namespace rfdnet::rcn
