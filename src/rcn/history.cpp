#include "rcn/history.hpp"

#include <stdexcept>

namespace rfdnet::rcn {

std::string RootCause::to_string() const {
  return "{[" + std::to_string(u) + " " + std::to_string(v) + "], " +
         (up ? "up" : "down") + ", " + std::to_string(seq) + "}";
}

RootCauseHistory::RootCauseHistory(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RootCauseHistory: zero capacity");
  }
}

bool RootCauseHistory::record(const RootCause& rc) {
  if (set_.contains(rc)) return false;
  if (order_.size() == capacity_) {
    set_.erase(order_.front());
    order_.pop_front();
  }
  set_.insert(rc);
  order_.push_back(rc);
  return true;
}

void RootCauseHistory::clear() {
  set_.clear();
  order_.clear();
}

}  // namespace rfdnet::rcn
