#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>

#include "rcn/root_cause.hpp"

namespace rfdnet::rcn {

/// Bounded history of root causes seen from one peer (paper §6.2).
///
/// The RCN-enhanced damping filter consults this before applying a penalty:
/// only the *first* update carrying a given root cause increments the
/// penalty; every later update with the same RC passes through penalty-free.
/// The history is bounded FIFO so long-running routers cannot grow without
/// limit; the bound only needs to cover root causes still circulating.
class RootCauseHistory {
 public:
  explicit RootCauseHistory(std::size_t capacity = 1024);

  /// Records `rc` if unseen. Returns true if this is the first sighting
  /// (i.e. the damping penalty should be applied).
  bool record(const RootCause& rc);

  bool contains(const RootCause& rc) const { return set_.contains(rc); }
  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  std::size_t capacity_;
  std::unordered_set<RootCause, RootCauseHash> set_;
  std::deque<RootCause> order_;
};

}  // namespace rfdnet::rcn
