#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bgp/damping_hook.hpp"
#include "bgp/observer.hpp"
#include "bgp/rib_backend.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "rcn/history.hpp"
#include "rfd/params.hpp"
#include "rfd/penalty.hpp"
#include "sim/engine.hpp"

namespace rfdnet::rfd {

/// How an incoming update was classified for penalty purposes.
enum class UpdateClass : std::uint8_t {
  kInitial,         ///< first announcement ever seen on this entry (free)
  kWithdrawal,      ///< route removed: P_W
  kReannouncement,  ///< route restored after withdrawal: P_A
  kAttrChange,      ///< announcement with different attributes
  kDuplicate,       ///< no state change (free)
};

std::string to_string(UpdateClass c);

/// Per-router route flap damping (RFC 2439), one instance per router that
/// deploys damping. State lives per RIB-IN entry (peer slot, prefix).
///
/// Suppression and reuse follow the paper exactly: an update pushing the
/// penalty over the cut-off suppresses the entry and schedules a reuse event
/// at the (exact or quantized) time the penalty will have decayed to the
/// reuse threshold; further updates while suppressed keep charging the
/// penalty and push the reuse event out — the raw material of the paper's
/// timer interactions.
///
/// With `enable_rcn()`, the §6.2 filter is installed in front of the penalty:
/// only the first update carrying a given root cause is charged; updates
/// with an already-seen RC (path exploration aftershocks, route reuse
/// announcements) pass penalty-free. Updates without an RC attribute are
/// charged normally.
class DampingModule final : public bgp::DampingHook {
 public:
  /// Invoked when a reuse timer fires; returns true if the reuse changed the
  /// router's best route (a "noisy" reuse). Typically bound to
  /// `BgpRouter::on_reuse`.
  using ReuseFn = std::function<bool(int slot, bgp::Prefix)>;

  /// `peer_ids[slot]` maps slots to neighbor ids (observer reporting only).
  /// `backend` selects the per-prefix entry store; the null backend retains
  /// no state, so the module classifies updates but never charges or
  /// suppresses (pure hook overhead — benchmarking only).
  DampingModule(net::NodeId self, std::vector<net::NodeId> peer_ids,
                const DampingParams& params, sim::Engine& engine,
                ReuseFn on_reuse, bgp::Observer* observer = nullptr,
                bgp::RibBackendKind backend = bgp::RibBackendKind::kHashMap);
  ~DampingModule() override;

  DampingModule(const DampingModule&) = delete;
  DampingModule& operator=(const DampingModule&) = delete;

  /// Installs the RCN filter (paper §6.2).
  void enable_rcn(std::size_t history_capacity = 1024);
  bool rcn_enabled() const { return rcn_enabled_; }

  /// Installs *selective route flap damping* (Mao et al., SIGCOMM 2002; the
  /// prior fix §6 of the paper argues is insufficient): announcements whose
  /// relative-preference attribute marks a *degrading* route — the
  /// signature of path exploration — are not charged. Withdrawals and
  /// improving/equal announcements are charged normally, so (exactly as the
  /// paper notes) it neither catches all exploration updates nor prevents
  /// secondary charging: a reuse announcement ranks as an improvement and
  /// is charged at full price. Mutually exclusive with RCN.
  void enable_selective();
  bool selective_enabled() const { return selective_enabled_; }

  /// Ablation hook (§5.2 decomposition): ignore all penalty increments after
  /// `t`. Freezing at the end of the charging period isolates the effect of
  /// path exploration alone — no secondary charging can occur.
  void set_charge_deadline(sim::SimTime t) { charge_deadline_ = t; }

  // bgp::DampingHook:
  void on_update(int slot, const bgp::UpdateMessage& msg,
                 const std::optional<bgp::Route>& previous_route,
                 bool loop_denied) override;
  bool suppressed(int slot, bgp::Prefix p) const override;
  void reset() override;

  /// Decayed penalty value of the entry (slot, p) right now.
  double penalty(int slot, bgp::Prefix p) const;
  /// Scheduled reuse time for a suppressed entry; nullopt otherwise.
  std::optional<sim::SimTime> reuse_time(int slot, bgp::Prefix p) const;
  /// Number of currently suppressed entries on this router.
  int suppressed_count() const { return suppressed_count_; }
  /// Number of prefixes with allocated damping state. Read-only queries
  /// (`penalty`, `suppressed`, `reuse_time`) never grow this (tests).
  std::size_t tracked_entries() const { return entries_.size(); }
  /// Number of (slot, prefix) entries whose penalty state is live right now
  /// (non-zero penalty or suppressed) — what the RFC 2439 memory limit
  /// bounds. `tracked_entries` additionally counts rows kept only for their
  /// `ever_announced` flag. O(tracked) walk; reporting cadence only.
  std::size_t active_entries() const;
  /// Same count with penalty decay evaluated at an explicit instant instead
  /// of the engine clock. The telemetry probes use this: at a barrier-
  /// aligned sample instant a shard's own clock sits at its last executed
  /// event, which depends on the partition — the grid instant does not.
  std::size_t active_entries(sim::SimTime now) const;
  /// Entry store backend this module runs on.
  bgp::RibBackendKind rib_backend() const { return entries_.kind(); }

  const DampingParams& params() const { return params_; }

  /// Attaches (or detaches, with nullptr) a metrics bundle / trace sink.
  /// Typically shared across all damping modules of a network. Not owned.
  void set_metrics(obs::DampingMetrics* m) { metrics_ = m; }
  void set_trace(obs::TraceSink* t) { trace_ = t; }

  /// Attaches (or detaches) the causal span tracer: each suppression opens
  /// an `rfd.suppress` interval span (child of the update that crossed the
  /// cut-off) that the reuse firing closes, and reuse-triggered re-runs of
  /// the decision process execute under an `rfd.reuse` span. Not owned.
  void set_span_tracer(obs::SpanTracer* t) { spans_ = t; }

  /// Attaches (or detaches) the shared phase-timeline recorder fed from this
  /// module's charge / suppress / reuse events. Not owned.
  void set_phase_timeline(obs::PhaseTimeline* t) { timeline_ = t; }

  /// Audit: every penalty lies in [0, ceiling], every suppressed entry has a
  /// live reuse event scheduled at its recorded reuse time, and the
  /// suppressed count matches the entry flags. Throws
  /// `obs::InvariantViolation` on breakage; always runs.
  void check_invariants() const;

  /// Test-only back door: overwrite the stored penalty of (slot, p) with an
  /// arbitrary (possibly invalid) value stamped `now`, creating the entry if
  /// needed. Exists so tests can seed a violation for `check_invariants`.
  void debug_set_penalty(int slot, bgp::Prefix p, double value);

 private:
  struct Entry {
    PenaltyState penalty;
    bool suppressed = false;
    bool ever_announced = false;
    sim::EventId reuse_event = sim::kInvalidEvent;
    sim::SimTime reuse_at;
    /// Open `rfd.suppress` span while the entry is suppressed.
    obs::SpanContext supp_span;
  };

  Entry& entry(int slot, bgp::Prefix p);
  Entry* find_entry(int slot, bgp::Prefix p);
  const Entry* find_entry(int slot, bgp::Prefix p) const;
  UpdateClass classify(bool ever_announced, const bgp::UpdateMessage& msg,
                       const std::optional<bgp::Route>& prev) const;
  double increment_for(UpdateClass c) const;
  /// RFC 2439 memory-limit prune: forgets the decayed penalty *and* the
  /// episode's timer freight (pending reuse wakeup, `reuse_at`, open
  /// suppression span). `ever_announced` survives on purpose — see the
  /// definition.
  void prune_decayed(Entry& e);
  void schedule_reuse(Entry& e, int slot, bgp::Prefix p);
  void fire_reuse(int slot, bgp::Prefix p);

  net::NodeId self_;
  std::vector<net::NodeId> peer_ids_;
  DampingParams params_;
  sim::Engine& engine_;
  ReuseFn reuse_fn_;
  bgp::Observer* observer_;
  obs::DampingMetrics* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
  obs::PhaseTimeline* timeline_ = nullptr;

  bool rcn_enabled_ = false;
  bool selective_enabled_ = false;
  std::optional<sim::SimTime> charge_deadline_;
  std::vector<rcn::RootCauseHistory> rcn_history_;  // per slot

  // entries_[p] is indexed by peer slot; storage backend per `rib_backend()`.
  bgp::RibTable<std::vector<Entry>> entries_;
  int suppressed_count_ = 0;
};

}  // namespace rfdnet::rfd
