#pragma once

#include <string>

namespace rfdnet::rfd {

/// Route flap damping configuration (RFC 2439; Table 1 of the paper).
///
/// Penalty increments are applied per received update by type; the penalty
/// decays exponentially with half-life `half_life_s`; an entry whose penalty
/// exceeds `cutoff` is suppressed until it decays below `reuse`. The
/// `max_suppress_s` hold-down bounds suppression by capping the penalty at
/// `ceiling()` (= 12000 with Cisco defaults — the figure §5.2 of the paper
/// quotes).
struct DampingParams {
  double withdrawal_penalty = 1000.0;      ///< P_W
  double reannouncement_penalty = 0.0;     ///< P_A
  double attr_change_penalty = 500.0;      ///< attributes-change increment
  double cutoff = 2000.0;                  ///< P_cut
  double reuse = 750.0;                    ///< P_reuse
  double half_life_s = 900.0;              ///< H (15 min)
  double max_suppress_s = 3600.0;          ///< max hold-down (60 min)

  /// Reuse-timer granularity: 0 = exact threshold-crossing events; > 0
  /// rounds each reuse up to the next multiple (real routers sweep reuse
  /// lists periodically; Cisco uses 10 s).
  double reuse_granularity_s = 0.0;

  /// Whether announcements denied by AS-path loop detection are charged the
  /// withdrawal penalty for the route they invalidate. Off (default) models
  /// inbound filtering running before damping; on is an ablation that shows
  /// how heavily exploration-induced upstream switches would distort
  /// penalties.
  bool charge_loop_denied = false;

  /// Cisco defaults (Table 1, left column).
  static DampingParams cisco();
  /// Juniper defaults (Table 1, right column): re-announcements are
  /// penalized like withdrawals and the cut-off is higher.
  static DampingParams juniper();

  /// Exponential decay rate: lambda = ln 2 / H.
  double lambda() const;

  /// Penalty ceiling implied by the max hold-down time:
  /// reuse * 2^(max_suppress / half_life).
  double ceiling() const;

  /// Throws `std::invalid_argument` when the configuration is inconsistent
  /// (non-positive thresholds, reuse >= cutoff, negative penalties, ...).
  void validate() const;

  std::string to_string() const;

  friend bool operator==(const DampingParams&, const DampingParams&) = default;
};

}  // namespace rfdnet::rfd
