#include "rfd/params.hpp"

#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

namespace rfdnet::rfd {

DampingParams DampingParams::cisco() {
  return DampingParams{};  // the defaults are the Cisco column of Table 1
}

DampingParams DampingParams::juniper() {
  DampingParams p;
  p.reannouncement_penalty = 1000.0;
  p.cutoff = 3000.0;
  return p;
}

double DampingParams::lambda() const { return std::numbers::ln2 / half_life_s; }

double DampingParams::ceiling() const {
  return reuse * std::exp2(max_suppress_s / half_life_s);
}

void DampingParams::validate() const {
  if (withdrawal_penalty < 0 || reannouncement_penalty < 0 ||
      attr_change_penalty < 0) {
    throw std::invalid_argument("DampingParams: negative penalty increment");
  }
  if (reuse <= 0) throw std::invalid_argument("DampingParams: reuse <= 0");
  if (cutoff <= reuse) {
    throw std::invalid_argument("DampingParams: cutoff must exceed reuse");
  }
  if (half_life_s <= 0) {
    throw std::invalid_argument("DampingParams: half-life <= 0");
  }
  if (max_suppress_s <= 0) {
    throw std::invalid_argument("DampingParams: max hold-down <= 0");
  }
  if (reuse_granularity_s < 0) {
    throw std::invalid_argument("DampingParams: negative granularity");
  }
  if (ceiling() <= cutoff) {
    // A ceiling at or below the cut-off would make suppression impossible.
    throw std::invalid_argument(
        "DampingParams: max hold-down too small for cutoff");
  }
}

std::string DampingParams::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{PW=%g PA=%g Pattr=%g cut=%g reuse=%g H=%gs maxhold=%gs "
                "ceiling=%g}",
                withdrawal_penalty, reannouncement_penalty, attr_change_penalty,
                cutoff, reuse, half_life_s, max_suppress_s, ceiling());
  return buf;
}

}  // namespace rfdnet::rfd
