#pragma once

#include "sim/time.hpp"

namespace rfdnet::rfd {

/// A lazily-decayed damping penalty: stores (value, stamp) and computes
/// p(t) = p(t0) * e^(-lambda (t - t0)) on access (Eq. 1 of the paper), so no
/// periodic decay events are needed and reuse times are exact.
class PenaltyState {
 public:
  /// Current value at `now`.
  double at(sim::SimTime now, double lambda) const;

  /// Adds `increment` at `now`, clamping the result to `ceiling`.
  void add(double increment, sim::SimTime now, double lambda, double ceiling);

  /// Time from `now` until the value decays to `target`; zero if already at
  /// or below it. `target` must be positive.
  sim::Duration time_to_reach(double target, sim::SimTime now,
                              double lambda) const;

  /// Forgets all penalty (RFC 2439 "no longer tracked" state).
  void reset();

  bool is_zero() const { return value_ == 0.0; }
  /// Raw stored value (at the last update stamp), for tests.
  double raw() const { return value_; }

  /// Overwrites the stored (value, stamp) pair without validation. Test-only
  /// back door so the invariant checker can be shown a corrupted state;
  /// `add` rejects what this accepts.
  void force(double value, sim::SimTime stamp) {
    value_ = value;
    stamp_ = stamp;
  }

 private:
  double value_ = 0.0;
  sim::SimTime stamp_;
};

}  // namespace rfdnet::rfd
