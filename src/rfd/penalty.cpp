#include "rfd/penalty.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfdnet::rfd {

double PenaltyState::at(sim::SimTime now, double lambda) const {
  if (value_ == 0.0) return 0.0;
  const double dt = (now - stamp_).as_seconds();
  return value_ * std::exp(-lambda * dt);
}

void PenaltyState::add(double increment, sim::SimTime now, double lambda,
                       double ceiling) {
  if (increment < 0) throw std::invalid_argument("PenaltyState: negative add");
  value_ = std::min(at(now, lambda) + increment, ceiling);
  stamp_ = now;
}

sim::Duration PenaltyState::time_to_reach(double target, sim::SimTime now,
                                          double lambda) const {
  if (target <= 0) throw std::invalid_argument("PenaltyState: target <= 0");
  const double v = at(now, lambda);
  if (v <= target) return sim::Duration::zero();
  return sim::Duration::seconds(std::log(v / target) / lambda);
}

void PenaltyState::reset() {
  value_ = 0.0;
  stamp_ = sim::SimTime::zero();
}

}  // namespace rfdnet::rfd
