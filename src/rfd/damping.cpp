#include "rfd/damping.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/invariant.hpp"

namespace rfdnet::rfd {

std::string to_string(UpdateClass c) {
  switch (c) {
    case UpdateClass::kInitial:
      return "initial";
    case UpdateClass::kWithdrawal:
      return "withdrawal";
    case UpdateClass::kReannouncement:
      return "reannouncement";
    case UpdateClass::kAttrChange:
      return "attr-change";
    case UpdateClass::kDuplicate:
      return "duplicate";
  }
  return "?";
}

DampingModule::DampingModule(net::NodeId self, std::vector<net::NodeId> peer_ids,
                             const DampingParams& params, sim::Engine& engine,
                             ReuseFn on_reuse, bgp::Observer* observer,
                             bgp::RibBackendKind backend)
    : self_(self),
      peer_ids_(std::move(peer_ids)),
      params_(params),
      engine_(engine),
      reuse_fn_(std::move(on_reuse)),
      observer_(observer),
      entries_(backend) {
  params_.validate();
  if (!reuse_fn_) throw std::invalid_argument("DampingModule: empty reuse fn");
}

DampingModule::~DampingModule() {
  // Cancel outstanding reuse events: their callbacks capture `this`.
  // Ordered so the engine sees the same cancel sequence on every backend.
  entries_.for_each_ordered([&](bgp::Prefix, std::vector<Entry>& entries) {
    for (auto& e : entries) {
      if (e.reuse_event != sim::kInvalidEvent) engine_.cancel(e.reuse_event);
    }
  });
}

void DampingModule::enable_selective() {
  if (rcn_enabled_) {
    throw std::logic_error("DampingModule: selective and RCN are exclusive");
  }
  selective_enabled_ = true;
}

void DampingModule::enable_rcn(std::size_t history_capacity) {
  if (selective_enabled_) {
    throw std::logic_error("DampingModule: selective and RCN are exclusive");
  }
  rcn_enabled_ = true;
  rcn_history_.clear();
  rcn_history_.reserve(peer_ids_.size());
  for (std::size_t i = 0; i < peer_ids_.size(); ++i) {
    rcn_history_.emplace_back(history_capacity);
  }
}

DampingModule::Entry& DampingModule::entry(int slot, bgp::Prefix p) {
  auto& v = entries_.find_or_create(p);
  if (v.empty()) v.resize(peer_ids_.size());
  return v.at(slot);
}

DampingModule::Entry* DampingModule::find_entry(int slot, bgp::Prefix p) {
  auto* v = entries_.find(p);
  if (v == nullptr || v->empty()) return nullptr;
  return &v->at(slot);
}

const DampingModule::Entry* DampingModule::find_entry(int slot,
                                                      bgp::Prefix p) const {
  const auto* v = entries_.find(p);
  if (v == nullptr || v->empty()) return nullptr;
  return &v->at(slot);
}

UpdateClass DampingModule::classify(
    bool ever_announced, const bgp::UpdateMessage& msg,
    const std::optional<bgp::Route>& prev) const {
  if (msg.is_withdrawal()) {
    return prev ? UpdateClass::kWithdrawal : UpdateClass::kDuplicate;
  }
  if (!prev) {
    return ever_announced ? UpdateClass::kReannouncement
                          : UpdateClass::kInitial;
  }
  return (*prev == *msg.route) ? UpdateClass::kDuplicate
                               : UpdateClass::kAttrChange;
}

double DampingModule::increment_for(UpdateClass c) const {
  switch (c) {
    case UpdateClass::kWithdrawal:
      return params_.withdrawal_penalty;
    case UpdateClass::kReannouncement:
      return params_.reannouncement_penalty;
    case UpdateClass::kAttrChange:
      return params_.attr_change_penalty;
    case UpdateClass::kInitial:
    case UpdateClass::kDuplicate:
      return 0.0;
  }
  return 0.0;
}

void DampingModule::on_update(int slot, const bgp::UpdateMessage& msg,
                              const std::optional<bgp::Route>& prev,
                              bool loop_denied) {
  // The null backend retains nothing: charging a scratch entry would strand
  // the suppressed count and the reuse timer it implies, so the module is a
  // pass-through (every query below reads "no state").
  if (!entries_.retains()) return;
  const sim::SimTime now = engine_.now();
  const double lambda = params_.lambda();
  Entry* e = find_entry(slot, msg.prefix);

  // A present previous route proves this entry has been announced before,
  // even if the announcement predates this module's state (e.g. a reset).
  const bool ever_announced = prev.has_value() || (e && e->ever_announced);
  const UpdateClass cls = classify(ever_announced, msg, prev);

  double inc = increment_for(cls);
  if (loop_denied && !params_.charge_loop_denied) inc = 0.0;
  if (charge_deadline_ && now > *charge_deadline_) inc = 0.0;

  // Selective damping: a degrading announcement is presumed to be path
  // exploration and passes penalty-free.
  if (selective_enabled_ && msg.is_announcement() &&
      msg.rel_pref == bgp::RelPref::kWorse) {
    inc = 0.0;
  }

  // RCN filter (§6.2): only the first update carrying a fresh root cause is
  // charged, and the penalty follows the *flap itself* rather than the
  // perceived update (§7): a link-down root cause costs the withdrawal
  // penalty, a link-up one the re-announcement penalty — exactly what the
  // router adjacent to the flapping link would apply. Updates lacking the
  // attribute fall through to normal damping. The history is consulted only
  // for updates that would otherwise be charged: a free update (duplicate,
  // loop-denied, past the charge deadline) must not consume the RC's first
  // sighting, or the one genuinely chargeable update carrying it later would
  // pass free too.
  if (rcn_enabled_ && msg.rc && inc > 0.0) {
    const bool first_sighting = rcn_history_.at(slot).record(*msg.rc);
    inc = first_sighting ? (msg.rc->up ? params_.reannouncement_penalty
                                       : params_.withdrawal_penalty)
                         : 0.0;
  }

  // Allocate state lazily: only an update that charges penalty or flips
  // `ever_announced` has anything to remember. A withdrawal for a prefix we
  // never tracked (and with no previous route) is a pure no-op and must not
  // grow `entries_`.
  const bool marks_announced = prev.has_value() || msg.is_announcement();
  if (inc <= 0.0 && e == nullptr && !marks_announced) return;
  if (e == nullptr) e = &entry(slot, msg.prefix);
  if (marks_announced) e->ever_announced = true;
  if (inc <= 0.0) return;

  // RFC 2439 memory limit: an unsuppressed penalty that has decayed below
  // half the reuse threshold is no longer tracked.
  if (!e->suppressed && e->penalty.at(now, lambda) < params_.reuse / 2.0) {
    prune_decayed(*e);
  }

  e->penalty.add(inc, now, lambda, params_.ceiling());
  const double value = e->penalty.at(now, lambda);
  RFDNET_INVARIANT(value >= 0.0 && value <= params_.ceiling(),
                   "rfd: charged penalty outside [0, ceiling]");
  if (metrics_) {
    metrics_->charges->inc();
    // Logical bundles (bind_logical) leave the penalty histogram null — it
    // sums doubles in observation order, which is partition-dependent.
    if (metrics_->penalty) metrics_->penalty->observe(value);
  }
  if (observer_) {
    observer_->on_penalty(self_, peer_ids_.at(slot), msg.prefix, value, now);
  }
  if (timeline_) {
    // The recorder's own state machine keeps a suppressed entry suppressed
    // (secondary charging), so every applied charge is reported.
    timeline_->on_charge(now.as_seconds(), self_, peer_ids_.at(slot),
                         msg.prefix);
  }

  if (!e->suppressed && value > params_.cutoff) {
    e->suppressed = true;
    ++suppressed_count_;
    if (metrics_) metrics_->suppressions->inc();
    if (trace_) {
      trace_->rfd_suppress(now.as_seconds(), self_, peer_ids_.at(slot),
                           msg.prefix, value);
    }
    if (spans_) {
      // Child of the update that crossed the cut-off (the active context
      // while the router processes a delivered update).
      e->supp_span =
          spans_->child(spans_->active(), "rfd.suppress", now.as_seconds(),
                        self_, peer_ids_.at(slot), msg.prefix);
    }
    if (timeline_) {
      timeline_->on_suppress(now.as_seconds(), self_, peer_ids_.at(slot),
                             msg.prefix);
    }
    if (observer_) {
      observer_->on_suppress(self_, peer_ids_.at(slot), msg.prefix, value, now);
    }
    schedule_reuse(*e, slot, msg.prefix);
  } else if (e->suppressed) {
    // The penalty grew, so the reuse crossing moved out: reschedule.
    schedule_reuse(*e, slot, msg.prefix);
  }
}

void DampingModule::prune_decayed(Entry& e) {
  // The memory limit forgets the whole damping episode, not just the decayed
  // penalty value: a reuse wakeup left scheduled would fire into the *next*
  // suppression episode, and a stale `reuse_at` would let `reuse_time()`
  // report a reuse instant for state that no longer exists. `ever_announced`
  // deliberately survives — the limit forgets penalty history, not whether
  // the prefix was ever reachable; dropping it would reclassify the next
  // announcement as initial and change what gets charged.
  if (e.reuse_event != sim::kInvalidEvent) {
    engine_.cancel(e.reuse_event);
    e.reuse_event = sim::kInvalidEvent;
  }
  if (spans_ && e.supp_span.valid()) {
    spans_->close(e.supp_span, engine_.now().as_seconds());
  }
  e.supp_span = obs::SpanContext{};
  e.reuse_at = sim::SimTime::zero();
  e.penalty.reset();
}

void DampingModule::schedule_reuse(Entry& e, int slot, bgp::Prefix p) {
  const sim::SimTime now = engine_.now();
  sim::Duration wait =
      e.penalty.time_to_reach(params_.reuse, now, params_.lambda());
  if (params_.reuse_granularity_s > 0) {
    const auto g = sim::Duration::seconds(params_.reuse_granularity_s);
    // At least one full period: a penalty sitting exactly at (or rounding
    // to) the reuse boundary must not release at `now` — the quantized
    // timer's contract is "never early, on the grid".
    const auto periods = std::max<std::int64_t>(
        1, (wait.as_micros() + g.as_micros() - 1) / g.as_micros());
    wait = g * periods;
  }
  const sim::SimTime when = now + wait;
  if (e.reuse_event != sim::kInvalidEvent) {
    if (when == e.reuse_at) return;  // unchanged; keep the existing event
    engine_.cancel(e.reuse_event);
    if (metrics_) metrics_->reschedules->inc();
  }
  e.reuse_at = when;
  e.reuse_event = engine_.schedule_at(
      when, [this, slot, p] { fire_reuse(slot, p); },
      sim::EventKind::kReuseTimer);
}

void DampingModule::fire_reuse(int slot, bgp::Prefix p) {
  // The timer was scheduled from a live entry; look it up without creating
  // (the entry may be gone after a reset raced with an in-flight event).
  Entry* found = find_entry(slot, p);
  if (found == nullptr) return;
  Entry& e = *found;
  e.reuse_event = sim::kInvalidEvent;
  if (!e.suppressed) return;
  e.suppressed = false;
  --suppressed_count_;
  obs::SpanContext reuse_sc;
  if (spans_) {
    const double t = engine_.now().as_seconds();
    spans_->close(e.supp_span, t);
    reuse_sc = spans_->child_instant(e.supp_span, "rfd.reuse", t, self_,
                                     peer_ids_.at(slot), p);
    e.supp_span = obs::SpanContext{};
  }
  if (timeline_) {
    timeline_->on_reuse(engine_.now().as_seconds(), self_, peer_ids_.at(slot),
                        p);
  }
  // Run the re-advertisement under the reuse span: the updates it triggers
  // (the paper's "route reuse announcements") parent on it.
  const obs::ActiveSpan span_guard(spans_, reuse_sc);
  const bool noisy = reuse_fn_(slot, p);
  if (metrics_) metrics_->reuses->inc();
  if (trace_) {
    trace_->rfd_reuse(engine_.now().as_seconds(), self_, peer_ids_.at(slot), p,
                      noisy);
  }
  if (observer_) {
    observer_->on_reuse(self_, peer_ids_.at(slot), p, noisy, engine_.now());
  }
}

bool DampingModule::suppressed(int slot, bgp::Prefix p) const {
  const Entry* e = find_entry(slot, p);
  return e != nullptr && e->suppressed;
}

void DampingModule::reset() {
  // Ordered: span closes emit trace records, whose order must not depend on
  // the storage backend.
  entries_.for_each_ordered([&](bgp::Prefix, std::vector<Entry>& entries) {
    for (auto& e : entries) {
      if (e.reuse_event != sim::kInvalidEvent) engine_.cancel(e.reuse_event);
      if (spans_ && e.supp_span.valid()) {
        spans_->close(e.supp_span, engine_.now().as_seconds());
      }
    }
  });
  entries_.clear();
  suppressed_count_ = 0;
  for (auto& h : rcn_history_) h.clear();
}

double DampingModule::penalty(int slot, bgp::Prefix p) const {
  const Entry* e = find_entry(slot, p);
  return e ? e->penalty.at(engine_.now(), params_.lambda()) : 0.0;
}

std::optional<sim::SimTime> DampingModule::reuse_time(int slot,
                                                      bgp::Prefix p) const {
  const Entry* e = find_entry(slot, p);
  if (!e || !e->suppressed) return std::nullopt;
  return e->reuse_at;
}

std::size_t DampingModule::active_entries() const {
  return active_entries(engine_.now());
}

std::size_t DampingModule::active_entries(sim::SimTime now) const {
  const double lambda = params_.lambda();
  std::size_t live = 0;
  entries_.for_each([&](bgp::Prefix, const std::vector<Entry>& entries) {
    for (const Entry& e : entries) {
      if (e.suppressed || e.penalty.at(now, lambda) > 0.0) ++live;
    }
  });
  return live;
}

void DampingModule::check_invariants() const {
  const sim::SimTime now = engine_.now();
  const double lambda = params_.lambda();
  int suppressed = 0;
  entries_.for_each([&](bgp::Prefix, const std::vector<Entry>& entries) {
    for (const Entry& e : entries) {
      const double value = e.penalty.at(now, lambda);
      obs::check_always(value >= 0.0, "rfd: negative penalty");
      obs::check_always(value <= params_.ceiling(),
                        "rfd: penalty above ceiling");
      if (e.suppressed) {
        ++suppressed;
        obs::check_always(e.reuse_event != sim::kInvalidEvent,
                          "rfd: suppressed entry without a reuse timer");
        obs::check_always(engine_.is_pending(e.reuse_event),
                          "rfd: suppressed entry's reuse timer is stale");
      } else {
        // Converse: only a suppressed entry may hold a live reuse wakeup.
        // A pruned (or reused) entry with a timer still scheduled would fire
        // into a later suppression episode.
        obs::check_always(e.reuse_event == sim::kInvalidEvent,
                          "rfd: unsuppressed entry holds a live reuse timer");
      }
    }
  });
  obs::check_always(suppressed == suppressed_count_,
                    "rfd: suppressed count out of sync with entries");
}

void DampingModule::debug_set_penalty(int slot, bgp::Prefix p, double value) {
  entry(slot, p).penalty.force(value, engine_.now());
}

}  // namespace rfdnet::rfd
