#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

namespace rfdnet::svc {

/// Bounded LRU map from canonical request bytes to the finished response
/// bytes. Values are `shared_ptr<const string>` so an entry can be handed
/// to a client and evicted concurrently without copying or dangling. Keyed
/// by the full canonical string, not its hash — the fnv1a fingerprint is
/// only the display/index form, so a hash collision can never serve the
/// wrong job's result. Not thread-safe; the service guards it with its own
/// mutex (every touch is O(1) pointer surgery, nothing worth a finer lock).
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Fetches and marks most-recently-used; nullptr on miss.
  std::shared_ptr<const std::string> get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts or refreshes; evicts the least-recently-used entry past
  /// capacity. A capacity of zero disables caching entirely.
  void put(const std::string& key, std::shared_ptr<const std::string> value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.push_front(Entry{key, std::move(value)});
    index_.emplace(key, order_.begin());
    if (order_.size() > capacity_) {
      index_.erase(order_.back().key);
      order_.pop_back();
    }
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> value;
  };

  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace rfdnet::svc
