#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/experiment.hpp"
#include "core/fnv1a.hpp"
#include "core/full_table.hpp"
#include "svc/json.hpp"

namespace rfdnet::svc {

/// One validated what-if job: which driver to run, its full config, and
/// which payload sections the client asked for. `canonical` holds the
/// canonical serialization of the job object (sorted keys, one number
/// rendering) — the content address. Two texts describing the same job
/// canonicalize to the same bytes; note that explicitly spelling out a
/// default value *is* a different description and caches separately.
struct JobSpec {
  enum class Kind : std::uint8_t { kExperiment, kFullTable };

  Kind kind = Kind::kExperiment;
  core::ExperimentConfig experiment;
  core::FullTableConfig full_table;
  /// Experiment only: >= 1 runs the sharded driver. (The full-table shard
  /// count lives in `full_table.shards`.)
  int shards = 0;

  bool want_result = false;     ///< experiment result_json (experiment only)
  bool want_scorecard = false;  ///< deterministic scorecard
  bool want_metrics = false;    ///< obs registry JSON
  bool want_stability = false;  ///< update-train summary
  bool want_telemetry = false;  ///< telemetry JSONL + summary

  std::string canonical;

  std::uint64_t key() const { return core::fnv1a(canonical); }
  /// 16-hex-digit form of `key()` — the job id clients see.
  std::string key_hex() const;
};

/// Decodes and validates a job object (the `"job"` member of a `run`
/// request). Strict: unknown members, wrong types, out-of-range sizes and
/// feature combinations the drivers would reject (faults under sharding,
/// `"result"` on a full-table job) all fail here, with the message shaped
/// by the shared `core/config_validate` helpers where one applies. Returns
/// nullopt and fills `error` on any violation.
std::optional<JobSpec> parse_job(const Json& job, std::string* error);

/// Runs the job synchronously on the calling thread and returns the payload
/// object: `{"job":"<hex>","kind":"...","outputs":{...}}` with one member
/// per requested output, serialized canonically. Deterministic for a given
/// spec — the caching layer depends on byte-equality of this string.
std::string run_job(const JobSpec& spec);

}  // namespace rfdnet::svc
