#include "svc/service.hpp"

#include <cstdio>
#include <exception>
#include <utility>
#include <vector>

namespace rfdnet::svc {

std::string error_response(int code, const std::string& message) {
  std::string out = "{\"error\":{\"code\":";
  out += std::to_string(code);
  out += ",\"message\":\"";
  out += Json::escape(message);
  out += "\"},\"ok\":false}";
  return out;
}

Service::Service(ServiceConfig cfg, JobRunner run)
    : cfg_(cfg),
      run_(run ? std::move(run) : JobRunner(&run_job)),
      runner_(cfg.runner ? cfg.runner : &core::ParallelRunner::shared()),
      cache_(cfg.cache_capacity),
      metrics_(obs::SvcMetrics::bind(registry_)) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Service::~Service() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

bool Service::shutdown_requested() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shutdown_requested_;
}

Service::Stats Service::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.accepted = metrics_.accepted->value();
  s.completed = metrics_.completed->value();
  s.failed = metrics_.failed->value();
  s.cache_hits = metrics_.cache_hits->value();
  s.coalesced = metrics_.coalesced->value();
  s.rejected_full = metrics_.rejected_full->value();
  s.rejected_draining = metrics_.rejected_draining->value();
  s.queue_depth = queue_.size();
  s.running = running_;
  s.cached = cache_.size();
  return s;
}

std::string Service::status_line() const {
  const Stats s = stats();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "rfdnetd: queue=%zu running=%zu accepted=%llu "
                "completed=%llu failed=%llu cache_hits=%llu joins=%llu "
                "rejected=%llu",
                s.queue_depth, s.running,
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.failed),
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.coalesced),
                static_cast<unsigned long long>(s.rejected_full +
                                                s.rejected_draining));
  return buf;
}

std::string Service::handle_line(const std::string& line) {
  std::string parse_error;
  const auto request = Json::parse(line, &parse_error);
  if (!request) {
    return error_response(400, "malformed JSON: " + parse_error);
  }
  const Json* op = request->find("op");
  if (!op || !op->is_string()) {
    return error_response(400, "request must be an object with a string "
                               "'op' member");
  }
  const std::string& name = op->as_string();
  if (name == "ping") {
    return "{\"ok\":true,\"pong\":true}";
  }
  if (name == "status") {
    const Stats s = stats();
    std::string out = "{\"ok\":true,\"status\":{";
    out += "\"cache_entries\":" + std::to_string(s.cached);
    out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
    out += ",\"jobs_accepted\":" + std::to_string(s.accepted);
    out += ",\"jobs_completed\":" + std::to_string(s.completed);
    out += ",\"jobs_failed\":" + std::to_string(s.failed);
    out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
    out += ",\"rejected_draining\":" + std::to_string(s.rejected_draining);
    out += ",\"rejected_queue_full\":" + std::to_string(s.rejected_full);
    out += ",\"running\":" + std::to_string(s.running);
    out += ",\"singleflight_joins\":" + std::to_string(s.coalesced);
    out += "}}";
    return out;
  }
  if (name == "shutdown") {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_requested_ = true;
      draining_ = true;
    }
    return "{\"draining\":true,\"ok\":true}";
  }
  if (name == "run") {
    return handle_run(*request);
  }
  return error_response(400, "unknown op '" + name + "'");
}

std::string Service::handle_run(const Json& request) {
  const Json* job = request.find("job");
  if (!job) {
    return error_response(400, "'run' requires a 'job' member");
  }
  for (const auto& [key, value] : request.as_object()) {
    if (key != "op" && key != "job") {
      return error_response(400, "unknown member '" + key + "'");
    }
  }
  std::string parse_error;
  auto spec = parse_job(*job, &parse_error);
  if (!spec) {
    return error_response(400, parse_error);
  }

  std::shared_future<std::shared_ptr<const std::string>> future;
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Resolution order: cached bytes beat everything (a hit is free and
    // immune to drain), then an in-flight twin, then a queue slot.
    if (const auto cached = cache_.get(spec->canonical)) {
      metrics_.cache_hits->inc();
      return *cached;
    }
    if (const auto it = inflight_.find(spec->canonical);
        it != inflight_.end()) {
      metrics_.coalesced->inc();
      future = it->second->future;
    } else if (draining_) {
      metrics_.rejected_draining->inc();
      return error_response(503, "service is draining; resubmit to the next "
                                 "instance");
    } else if (queue_.size() >= cfg_.queue_capacity) {
      metrics_.rejected_full->inc();
      return error_response(429, "job queue is full (capacity " +
                                     std::to_string(cfg_.queue_capacity) +
                                     "); retry later");
    } else {
      auto flight = std::make_shared<Flight>();
      flight->spec = std::move(*spec);
      flight->future = flight->promise.get_future().share();
      future = flight->future;
      inflight_.emplace(flight->spec.canonical, flight);
      queue_.push_back(std::move(flight));
      metrics_.accepted->inc();
      metrics_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
      lk.unlock();
      work_cv_.notify_one();
    }
  }

  const std::shared_ptr<const std::string> result = future.get();
  return *result;
}

void Service::dispatcher_loop() {
  for (;;) {
    std::vector<std::shared_ptr<Flight>> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      // Take the whole backlog: one for_each over the batch lets the pool
      // run admitted jobs concurrently instead of one at a time.
      batch.assign(queue_.begin(), queue_.end());
      queue_.clear();
      running_ += batch.size();
      metrics_.queue_depth->set(0);
      metrics_.running->set(static_cast<std::int64_t>(running_));
    }

    std::vector<std::shared_ptr<const std::string>> results(batch.size());
    std::vector<bool> ok(batch.size(), false);
    runner_->for_each(batch.size(), [&](std::size_t i) {
      try {
        results[i] = std::make_shared<const std::string>(
            "{\"ok\":true,\"payload\":" + run_(batch[i]->spec) + "}");
        ok[i] = true;
      } catch (const std::exception& e) {
        results[i] = std::make_shared<const std::string>(
            error_response(500, std::string("job failed: ") + e.what()));
      } catch (...) {
        results[i] = std::make_shared<const std::string>(
            error_response(500, "job failed: unknown error"));
      }
    });

    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // Publish to the cache before erasing the in-flight entry: a new
        // submission arriving now sees either the flight (joins) or the
        // cached bytes (hit) — there is no window where it would recompute.
        if (ok[i]) {
          cache_.put(batch[i]->spec.canonical, results[i]);
          metrics_.completed->inc();
        } else {
          // Failures are not cached: a transient failure (bad_alloc under
          // load) must not pin an error as the permanent answer.
          metrics_.failed->inc();
        }
        inflight_.erase(batch[i]->spec.canonical);
      }
      running_ -= batch.size();
      metrics_.running->set(static_cast<std::int64_t>(running_));
    }
    // Fulfill outside the lock: joiners wake straight into future.get()'s
    // result without bouncing on mu_.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i]->promise.set_value(results[i]);
    }
    drained_cv_.notify_all();
  }
}

void Service::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  drained_cv_.wait(lk, [&] { return queue_.empty() && running_ == 0; });
}

}  // namespace rfdnet::svc
