#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rfdnet::svc {

/// Minimal JSON value for the daemon's request protocol, built for
/// *canonicalization*: objects are `std::map`-backed so `dump()` always
/// emits keys in sorted order, numbers have one rendering, and the parser
/// rejects anything that would make two texts of the same value differ
/// (duplicate keys, trailing garbage). Two requests meaning the same thing
/// therefore re-serialize to the same bytes — the property the
/// content-addressed result cache keys on.
///
/// Deliberately small: no comments, no NaN/Infinity, nesting capped at 64
/// levels (a recursive-descent parser on attacker-supplied input needs a
/// depth bound), documents capped at 4 MiB by the daemon's line reader.
class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;  // null
  static Json boolean(bool b);
  static Json number(double d);
  static Json number(std::int64_t n);
  static Json number(std::uint64_t n);
  static Json string(std::string s);
  static Json array(Array items = {});
  static Json object(Object members = {});
  /// Wraps pre-serialized JSON text verbatim — the escape hatch that lets
  /// the service embed the drivers' existing deterministic JSON artifacts
  /// (scorecards, metric registries) without reparsing them. The caller
  /// vouches that `text` is valid JSON.
  static Json raw(std::string text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Canonical serialization: sorted object keys (the map order), no
  /// whitespace, integers within +/-2^53 printed as integers, other finite
  /// numbers at max round-trip precision, -0 normalized to 0. Equal values
  /// always produce equal bytes.
  std::string dump() const;

  /// Strict parse of exactly one document: trailing non-whitespace,
  /// duplicate object keys, unescaped control characters, lone surrogates
  /// and depth > 64 are all errors. Returns nullopt and fills `error`
  /// (byte offset included) on failure.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

  /// JSON string-escapes `s` (quotes not included).
  static std::string escape(const std::string& s);

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  // also holds raw text for raw()
  bool raw_ = false;
  Array array_;
  Object object_;
};

}  // namespace rfdnet::svc
