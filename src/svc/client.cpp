#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rfdnet::svc {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path) {
    if (error) *error = "socket path too long: '" + socket_path + "'";
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error) {
      *error = "connect(" + socket_path + "): " + std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

bool Client::request(const std::string& line, std::string* response,
                     std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return false;
  }
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }

  char chunk[4096];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      if (error) *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      if (error) *error = "connection closed before a response arrived";
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace rfdnet::svc
