#include "svc/request.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/config_validate.hpp"
#include "core/export.hpp"
#include "core/sharded.hpp"
#include "fault/schedule.hpp"

namespace rfdnet::svc {

namespace {

/// Typed member extraction over a job object with error accumulation and
/// used-key tracking, so one final sweep can reject unknown members — a
/// typo'd knob must not silently run with its default (the same contract
/// `ArgParser` enforces for unknown flags).
class Fields {
 public:
  explicit Fields(const Json::Object& obj) : obj_(obj) {}

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool has(const std::string& key) {
    return obj_.find(key) != obj_.end();
  }

  void reject_unknown() {
    if (!ok()) return;
    for (const auto& [key, value] : obj_) {
      if (!used_.contains(key)) {
        fail("unknown member '" + key + "'");
        return;
      }
    }
  }

  std::string get_string(const std::string& key, const std::string& dflt) {
    const Json* v = take(key);
    if (!v) return dflt;
    if (!v->is_string()) {
      fail("'" + key + "' must be a string");
      return dflt;
    }
    return v->as_string();
  }

  bool get_bool(const std::string& key, bool dflt) {
    const Json* v = take(key);
    if (!v) return dflt;
    if (!v->is_bool()) {
      fail("'" + key + "' must be a boolean");
      return dflt;
    }
    return v->as_bool();
  }

  double get_double(const std::string& key, double dflt) {
    const Json* v = take(key);
    if (!v) return dflt;
    if (!v->is_number()) {
      fail("'" + key + "' must be a number");
      return dflt;
    }
    return v->as_number();
  }

  /// Integer in [lo, hi]; non-integral numbers are errors, not truncations.
  long long get_int(const std::string& key, long long dflt, long long lo,
                    long long hi) {
    const Json* v = take(key);
    if (!v) return dflt;
    if (!v->is_number() || v->as_number() != std::floor(v->as_number())) {
      fail("'" + key + "' must be an integer");
      return dflt;
    }
    const double d = v->as_number();
    if (d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
      fail("'" + key + "' out of range [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "]");
      return dflt;
    }
    return static_cast<long long>(d);
  }

  const Json* take(const std::string& key) {
    used_.insert(key);
    const auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
  }

  void fail(const std::string& msg) {
    if (error_.empty()) error_ = msg;
  }

 private:
  const Json::Object& obj_;
  std::set<std::string> used_;
  std::string error_;
};

bool parse_damping(Fields& f, std::optional<rfd::DampingParams>* out) {
  const std::string params = f.get_string("params", "cisco");
  if (params == "cisco") {
    *out = rfd::DampingParams::cisco();
  } else if (params == "juniper") {
    *out = rfd::DampingParams::juniper();
  } else if (params == "none") {
    out->reset();
  } else {
    f.fail("'params' must be one of cisco, juniper, none");
    return false;
  }
  return true;
}

bool parse_outputs(Fields& f, JobSpec* spec) {
  const Json* v = f.take("outputs");
  if (!v) {
    spec->want_scorecard = true;  // the deterministic default artifact
    return true;
  }
  if (!v->is_array() || v->as_array().empty()) {
    f.fail("'outputs' must be a non-empty array of strings");
    return false;
  }
  for (const Json& item : v->as_array()) {
    if (!item.is_string()) {
      f.fail("'outputs' entries must be strings");
      return false;
    }
    const std::string& name = item.as_string();
    if (name == "result") {
      spec->want_result = true;
    } else if (name == "scorecard") {
      spec->want_scorecard = true;
    } else if (name == "metrics") {
      spec->want_metrics = true;
    } else if (name == "stability") {
      spec->want_stability = true;
    } else if (name == "telemetry") {
      spec->want_telemetry = true;
    } else {
      f.fail("unknown output '" + name +
             "' (expected result, scorecard, metrics, stability, telemetry)");
      return false;
    }
  }
  return true;
}

bool parse_experiment(Fields& f, JobSpec* spec) {
  core::ExperimentConfig& cfg = spec->experiment;

  if (const Json* topo = f.take("topology")) {
    if (!topo->is_object()) {
      f.fail("'topology' must be an object");
      return false;
    }
    Fields t(topo->as_object());
    const std::string kind = t.get_string("kind", "mesh");
    if (kind == "mesh") {
      cfg.topology.kind = core::TopologySpec::Kind::kMeshTorus;
    } else if (kind == "internet") {
      cfg.topology.kind = core::TopologySpec::Kind::kInternetLike;
    } else if (kind == "line") {
      cfg.topology.kind = core::TopologySpec::Kind::kLine;
    } else if (kind == "ring") {
      cfg.topology.kind = core::TopologySpec::Kind::kRing;
    } else if (kind == "clique") {
      cfg.topology.kind = core::TopologySpec::Kind::kClique;
    } else if (kind == "random") {
      cfg.topology.kind = core::TopologySpec::Kind::kRandom;
    } else {
      t.fail("topology 'kind' must be one of mesh, internet, line, ring, "
             "clique, random");
    }
    // Sanity caps keep one hostile job from monopolizing the daemon; bigger
    // studies belong in the batch tools.
    cfg.topology.width = static_cast<int>(t.get_int("width", 10, 1, 512));
    cfg.topology.height = static_cast<int>(t.get_int("height", 10, 1, 512));
    cfg.topology.nodes = static_cast<int>(t.get_int("nodes", 100, 2, 20000));
    t.reject_unknown();
    if (!t.ok()) {
      f.fail("topology: " + t.error());
      return false;
    }
  }

  cfg.pulses = static_cast<int>(f.get_int("pulses", 1, 0, 1000));
  cfg.flap_interval_s = f.get_double("interval_s", 60.0);
  cfg.seed = static_cast<std::uint64_t>(
      f.get_int("seed", 1, 0, 9007199254740992LL));
  if (!parse_damping(f, &cfg.damping)) return false;
  cfg.rcn = f.get_bool("rcn", false);
  cfg.deployment = f.get_double("deployment", 1.0);
  cfg.timing.mrai_s = f.get_double("mrai_s", cfg.timing.mrai_s);

  const std::string policy = f.get_string("policy", "shortest-path");
  if (policy == "no-valley") {
    cfg.policy = core::PolicyKind::kNoValley;
  } else if (policy != "shortest-path") {
    f.fail("'policy' must be shortest-path or no-valley");
    return false;
  }

  spec->shards = static_cast<int>(f.get_int("shards", 0, 0, 64));

  if (f.has("faults")) {
    const std::string script = f.get_string("faults", "");
    try {
      fault::FaultSchedule::parse(script);  // validate the grammar up front
    } catch (const std::invalid_argument& e) {
      f.fail(std::string("faults: ") + e.what());
      return false;
    }
    fault::FaultPlan plan;
    plan.script = script;
    cfg.faults = std::move(plan);
  }

  if (!f.ok()) return false;

  if (!(cfg.flap_interval_s > 0) || !std::isfinite(cfg.flap_interval_s)) {
    f.fail("'interval_s' must be a positive finite number");
    return false;
  }
  if (!(cfg.deployment >= 0 && cfg.deployment <= 1)) {
    f.fail("'deployment' must be in [0, 1]");
    return false;
  }
  if (!(cfg.timing.mrai_s >= 0) || !std::isfinite(cfg.timing.mrai_s)) {
    f.fail("'mrai_s' must be a non-negative finite number");
    return false;
  }
  return true;
}

bool parse_full_table(Fields& f, JobSpec* spec) {
  core::FullTableConfig& cfg = spec->full_table;
  cfg.prefixes = static_cast<std::size_t>(
      f.get_int("prefixes", 1000, 1, 2000000));
  cfg.alpha = f.get_double("alpha", 1.0);
  cfg.events = static_cast<std::uint64_t>(
      f.get_int("events", 2000, 0, 5000000));
  cfg.event_interval_s = f.get_double("event_interval_s", 0.05);
  cfg.routers = static_cast<int>(f.get_int("routers", 4, 2, 1024));
  cfg.seed = static_cast<std::uint64_t>(
      f.get_int("seed", 1, 0, 9007199254740992LL));
  cfg.samples = static_cast<std::size_t>(f.get_int("samples", 64, 1, 65536));
  cfg.shards = static_cast<int>(f.get_int("shards", 0, 0, 64));
  if (!parse_damping(f, &cfg.damping)) return false;
  return f.ok();
}

void append_output(std::string& out, bool& first, const std::string& name,
                   const std::string& raw_json) {
  out += first ? "" : ",";
  first = false;
  out += '"';
  out += name;
  out += "\":";
  out += raw_json;
}

std::string telemetry_output(const std::string& jsonl,
                             const std::string& summary) {
  std::string out = "{\"jsonl\":\"";
  out += Json::escape(jsonl);
  out += "\",\"summary\":";
  out += summary.empty() ? "null" : summary;
  out += '}';
  return out;
}

}  // namespace

std::string JobSpec::key_hex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key()));
  return buf;
}

std::optional<JobSpec> parse_job(const Json& job, std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (!job.is_object()) return fail("'job' must be an object");

  JobSpec spec;
  Fields f(job.as_object());

  const std::string kind = f.get_string("kind", "experiment");
  if (kind == "experiment") {
    spec.kind = JobSpec::Kind::kExperiment;
  } else if (kind == "full_table") {
    spec.kind = JobSpec::Kind::kFullTable;
  } else {
    return fail("'kind' must be experiment or full_table");
  }

  if (!parse_outputs(f, &spec)) return fail(f.error());

  // The optional analytics knobs live on both configs; read them once.
  const double gap = f.get_double(
      "stability_gap_s", obs::StabilityTracker::kDefaultGapS);
  const double telemetry_s = f.get_double("telemetry_period_s", 0.0);

  const bool parsed = spec.kind == JobSpec::Kind::kExperiment
                          ? parse_experiment(f, &spec)
                          : parse_full_table(f, &spec);
  if (!parsed) return fail(f.error());
  f.reject_unknown();
  if (!f.ok()) return fail(f.error());

  if (spec.kind == JobSpec::Kind::kFullTable && spec.want_result) {
    return fail("output 'result' is experiment-only (full-table runs report "
                "through their scorecard)");
  }
  if (spec.want_telemetry && !(telemetry_s > 0)) {
    return fail("output 'telemetry' requires telemetry_period_s > 0");
  }

  const bool sharded_experiment =
      spec.kind == JobSpec::Kind::kExperiment &&
      (spec.shards >= 1 || spec.want_scorecard);
  if (sharded_experiment && spec.experiment.faults) {
    return fail("'faults' is serial-only: it cannot combine with 'shards' or "
                "the 'scorecard' output (the sharded driver rejects fault "
                "injection)");
  }

  // Route the knobs into whichever config runs, then let the shared
  // validators police them with the same messages every driver uses.
  try {
    core::validate_stability_gap(spec.want_stability, gap, "svc");
    core::validate_telemetry(telemetry_s, 0.0, "svc");
    if (spec.kind == JobSpec::Kind::kExperiment) {
      spec.experiment.collect_metrics = spec.want_metrics;
      spec.experiment.collect_stability = spec.want_stability;
      spec.experiment.stability_gap_s = gap;
      spec.experiment.telemetry_period_s = spec.want_telemetry ? telemetry_s : 0;
    } else {
      spec.full_table.collect_stability = spec.want_stability;
      spec.full_table.stability_gap_s = gap;
      spec.full_table.telemetry_period_s = spec.want_telemetry ? telemetry_s : 0;
      spec.full_table.validate();
    }
  } catch (const std::invalid_argument& e) {
    return fail(e.what());
  }

  spec.canonical = job.dump();
  return spec;
}

std::string run_job(const JobSpec& spec) {
  std::string outputs;
  bool first = true;
  std::string kind_name;

  if (spec.kind == JobSpec::Kind::kExperiment) {
    kind_name = "experiment";
    if (spec.shards >= 1 || spec.want_scorecard) {
      // The experiment scorecard is defined by the sharded driver (its
      // shard-count-invariant serialization); shards=0 runs it serially.
      const core::ShardedExperimentResult sr = core::run_sharded_experiment(
          spec.experiment, spec.shards >= 1 ? spec.shards : 1);
      const core::ExperimentResult& res = sr.base;
      if (spec.want_metrics) {
        append_output(outputs, first, "metrics", res.metrics.json());
      }
      if (spec.want_result) {
        append_output(outputs, first, "result", core::result_json(res));
      }
      if (spec.want_scorecard) {
        append_output(outputs, first, "scorecard", sr.scorecard());
      }
      if (spec.want_stability && res.stability) {
        append_output(outputs, first, "stability",
                      res.stability->summary_json());
      }
      if (spec.want_telemetry) {
        append_output(outputs, first, "telemetry",
                      telemetry_output(res.telemetry_jsonl,
                                       res.telemetry_summary));
      }
    } else {
      const core::ExperimentResult res = core::run_experiment(spec.experiment);
      if (spec.want_metrics) {
        append_output(outputs, first, "metrics", res.metrics.json());
      }
      if (spec.want_result) {
        append_output(outputs, first, "result", core::result_json(res));
      }
      if (spec.want_stability && res.stability) {
        append_output(outputs, first, "stability",
                      res.stability->summary_json());
      }
      if (spec.want_telemetry) {
        append_output(outputs, first, "telemetry",
                      telemetry_output(res.telemetry_jsonl,
                                       res.telemetry_summary));
      }
    }
  } else {
    kind_name = "full_table";
    const core::FullTableResult res = core::run_full_table(spec.full_table);
    if (spec.want_metrics) {
      append_output(outputs, first, "metrics", res.metrics.json());
    }
    if (spec.want_scorecard) {
      append_output(outputs, first, "scorecard", res.scorecard());
    }
    if (spec.want_stability && res.stability) {
      append_output(outputs, first, "stability",
                    res.stability->summary_json());
    }
    if (spec.want_telemetry) {
      append_output(outputs, first, "telemetry",
                    telemetry_output(res.telemetry_jsonl,
                                     res.telemetry_summary));
    }
  }

  std::string payload = "{\"job\":\"";
  payload += spec.key_hex();
  payload += "\",\"kind\":\"";
  payload += kind_name;
  payload += "\",\"outputs\":{";
  payload += outputs;
  payload += "}}";
  return payload;
}

}  // namespace rfdnet::svc
