#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "svc/cache.hpp"
#include "svc/request.hpp"

namespace rfdnet::svc {

struct ServiceConfig {
  /// Jobs admitted but not yet dispatched; one more lands a 429.
  std::size_t queue_capacity = 64;
  /// Finished responses retained, LRU. 0 disables caching.
  std::size_t cache_capacity = 128;
  /// Execution pool; nullptr = `core::ParallelRunner::shared()`.
  core::ParallelRunner* runner = nullptr;
};

/// The daemon's transport-independent brain: one `handle_line(request)` call
/// per protocol line, blocking until the response line is ready. Owns the
/// bounded job queue, the content-addressed LRU result cache, single-flight
/// deduplication and the service obs bundle; execution fans out over a
/// shared `core::ParallelRunner`.
///
/// Concurrency model: connection threads call `handle_line` freely. A `run`
/// request resolves, under one mutex, to exactly one of — cached bytes
/// (hit), an existing in-flight job's future (single-flight join), a queue
/// slot (accepted), or a 429/503 rejection. One dispatcher thread drains the
/// queue in arrival batches through `ParallelRunner::for_each`, then
/// publishes results to the cache and fulfills the futures *before* clearing
/// the in-flight entries, so every submission of a canonical request either
/// joins the computation or sees its cached bytes — never computes twice.
///
/// Responses are a pure function of the request: cache/in-flight state is
/// reported only through `status` counters, never in a `run` response, so a
/// resubmission is byte-identical to the original — the same determinism
/// contract the serial-vs-sharded suites enforce, extended to the wire.
class Service {
 public:
  /// `run` overrides how a decoded job executes — tests inject blocking or
  /// counting runners; the default is `svc::run_job`.
  using JobRunner = std::function<std::string(const JobSpec&)>;

  explicit Service(ServiceConfig cfg, JobRunner run = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Processes one protocol line (no trailing newline) and returns the
  /// response line (no trailing newline). Never throws; malformed input
  /// becomes an `{"ok":false,"error":{...}}` response. Blocks while the
  /// job computes.
  std::string handle_line(const std::string& line);

  /// Stops admitting new jobs (503) and blocks until queued + running jobs
  /// have all finished. Idempotent.
  void drain();

  /// Set once a `shutdown` request arrives; the transport polls it.
  bool shutdown_requested() const;

  /// One human-readable heartbeat line (queue depth, totals) for stderr.
  std::string status_line() const;

  /// Point-in-time counter values, for tests and the status op.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_draining = 0;
    std::size_t queue_depth = 0;
    std::size_t running = 0;
    std::size_t cached = 0;
  };
  Stats stats() const;

 private:
  /// One admitted canonical request: the spec, a shared result slot and the
  /// future every joiner waits on. Lives in `inflight_` from admission until
  /// after its result is published.
  struct Flight {
    JobSpec spec;
    std::promise<std::shared_ptr<const std::string>> promise;
    std::shared_future<std::shared_ptr<const std::string>> future;
  };

  std::string handle_run(const Json& request);
  void dispatcher_loop();

  ServiceConfig cfg_;
  JobRunner run_;
  core::ParallelRunner* runner_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // dispatcher: queue non-empty or stop
  std::condition_variable drained_cv_;  // drain(): queue empty and idle
  std::deque<std::shared_ptr<Flight>> queue_;
  std::map<std::string, std::shared_ptr<Flight>> inflight_;  // by canonical
  LruCache cache_;
  std::size_t running_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  bool shutdown_requested_ = false;

  obs::Registry registry_;
  obs::SvcMetrics metrics_;

  std::thread dispatcher_;
};

/// Formats a protocol error line: `{"ok":false,"error":{"code":...,
/// "message":"..."}}`. Codes follow HTTP idiom: 400 malformed request,
/// 429 queue full, 500 job failed, 503 draining.
std::string error_response(int code, const std::string& message);

}  // namespace rfdnet::svc
