#pragma once

#include <string>

namespace rfdnet::svc {

/// Small blocking client for the rfdnetd protocol: connect to the AF_UNIX
/// socket, send one newline-terminated request per `request()` call, read
/// the one response line. Used by the `rfdnetctl` CLI mode, the end-to-end
/// tests and the check.sh smoke leg. Not thread-safe; one per thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon. False (with `error` filled) on failure.
  bool connect(const std::string& socket_path, std::string* error);

  bool connected() const { return fd_ >= 0; }

  /// Sends `line` (newline appended) and blocks for the response line
  /// (newline stripped). False with `error` filled on transport failure.
  bool request(const std::string& line, std::string* response,
               std::string* error);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last response line
};

}  // namespace rfdnet::svc
