#include "svc/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace rfdnet::svc {

namespace {

constexpr int kMaxDepth = 64;

/// Largest integer a double represents exactly; integers beyond it would
/// canonicalize unstably, so they render in scientific notation instead.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return fail("invalid literal");
    pos += len;
    return true;
  }

  bool parse_hex4(unsigned* out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    pos += 4;
    *out = v;
    return true;
  }

  void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    std::string s;
    for (;;) {
      if (pos >= text.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        *out = std::move(s);
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        s += static_cast<char>(c);
        ++pos;
        continue;
      }
      ++pos;  // backslash
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the low half must follow immediately.
            if (!(consume('\\') && consume('u'))) {
              return fail("lone high surrogate");
            }
            unsigned lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(s, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_number(double* out) {
    const std::size_t start = pos;
    if (consume('-')) {
      // fall through to digits
    }
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      return fail("expected digit");
    }
    if (text[pos] == '0') {
      ++pos;  // no leading zeros
    } else {
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (consume('.')) {
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("expected fraction digit");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("expected exponent digit");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    const std::string token = text.substr(start, pos - start);
    const double d = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(d)) return fail("number out of range");
    *out = d;
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null", 4)) return false;
      *out = Json();
      return true;
    }
    if (c == 't') {
      if (!literal("true", 4)) return false;
      *out = Json::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false", 5)) return false;
      *out = Json::boolean(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Json::string(std::move(s));
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      double d = 0.0;
      if (!parse_number(&d)) return false;
      *out = Json::number(d);
      return true;
    }
    if (c == '[') {
      ++pos;
      Json::Array items;
      skip_ws();
      if (consume(']')) {
        *out = Json::array(std::move(items));
        return true;
      }
      for (;;) {
        Json item;
        if (!parse_value(&item, depth + 1)) return false;
        items.push_back(std::move(item));
        skip_ws();
        if (consume(']')) break;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
      *out = Json::array(std::move(items));
      return true;
    }
    if (c == '{') {
      ++pos;
      Json::Object members;
      skip_ws();
      if (consume('}')) {
        *out = Json::object(std::move(members));
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Json value;
        if (!parse_value(&value, depth + 1)) return false;
        // Duplicate keys would make canonicalization ambiguous (which value
        // wins?), so they are a protocol error, not a last-wins merge.
        if (!members.emplace(std::move(key), std::move(value)).second) {
          return fail("duplicate object key");
        }
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
      *out = Json::object(std::move(members));
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double d) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = d;
  return j;
}

Json Json::number(std::int64_t n) { return number(static_cast<double>(n)); }

Json Json::number(std::uint64_t n) { return number(static_cast<double>(n)); }

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array(Array items) {
  Json j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(items);
  return j;
}

Json Json::object(Object members) {
  Json j;
  j.kind_ = Kind::kObject;
  j.object_ = std::move(members);
  return j;
}

Json Json::raw(std::string text) {
  Json j;
  j.kind_ = Kind::kString;  // kind is irrelevant; dump_to short-circuits
  j.string_ = std::move(text);
  j.raw_ = true;
  return j;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  if (raw_) {
    out += string_;
    return;
  }
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      double d = number_;
      if (d == 0.0) d = 0.0;  // normalize -0
      char buf[32];
      if (d == std::floor(d) && std::fabs(d) <= kMaxExactInt) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(d));
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", d);
      }
      out += buf;
      break;
    }
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ',';
        first = false;
        item.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        value.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  Json value;
  if (!p.parse_value(&value, 0)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing garbage at byte " + std::to_string(p.pos);
    return std::nullopt;
  }
  return value;
}

}  // namespace rfdnet::svc
