#include "svc/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/telemetry.hpp"

namespace rfdnet::svc {

namespace {

/// Requests are capped well below any legitimate job description; a line
/// that keeps growing past this is a protocol violation, not a big job.
constexpr std::size_t kMaxLine = 4u << 20;  // 4 MiB

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a client that hung up becomes an EPIPE error on this
    // connection's thread, not a process-wide SIGPIPE.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Daemon::Daemon(DaemonConfig cfg, Service& svc)
    : cfg_(std::move(cfg)), svc_(svc) {}

Daemon::~Daemon() {
  close_listener();
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
}

bool Daemon::start(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.empty() ||
      cfg_.socket_path.size() >= sizeof addr.sun_path) {
    if (error) {
      *error = "socket path must be 1.." +
               std::to_string(sizeof addr.sun_path - 1) + " bytes: '" +
               cfg_.socket_path + "'";
    }
    return false;
  }
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
              cfg_.socket_path.size() + 1);

  if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    if (error) *error = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a crashed predecessor would make bind fail;
  // this daemon's own stop path unlinks, so anything here is leftover.
  ::unlink(cfg_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (error) {
      *error = "bind(" + cfg_.socket_path + "): " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, cfg_.backlog) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    close_listener();
    return false;
  }
  return true;
}

void Daemon::request_stop() {
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    // Best-effort, async-signal-safe; a full pipe already means a stop is
    // pending.
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Daemon::close_listener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(cfg_.socket_path.c_str());
  }
}

int Daemon::serve() {
  obs::Heartbeat heartbeat(cfg_.heartbeat_s > 0 ? cfg_.heartbeat_s : 1e9);
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    // A finite timeout so the shutdown-request flag (set by a protocol
    // message on a connection thread) and the heartbeat get polled even on
    // an idle socket.
    const int rc = ::poll(fds, 2, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "rfdnetd: poll: %s\n", std::strerror(errno));
      break;
    }
    if (cfg_.heartbeat_s > 0 && heartbeat.due()) {
      std::fprintf(stderr, "%s\n", svc_.status_line().c_str());
    }
    if ((fds[1].revents & POLLIN) != 0 || svc_.shutdown_requested()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      std::fprintf(stderr, "rfdnetd: accept: %s\n", std::strerror(errno));
      break;
    }
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      conn_fds_.insert(conn);
      conn_threads_.emplace_back([this, conn] { handle_connection(conn); });
    }
  }

  // Stop sequence: refuse new connections, let admitted work finish (the
  // service rejects new submissions with 503 while draining), then unblock
  // any reader still parked in recv. SHUT_RD only — a response for a job
  // that finished during the drain must still reach its client.
  close_listener();
  svc_.drain();
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  std::fprintf(stderr, "rfdnetd: drained; %s\n", svc_.status_line().c_str());
  return 0;
}

void Daemon::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;  // blank lines are keep-alive no-ops
      const std::string response = svc_.handle_line(line) + "\n";
      if (!send_all(fd, response)) break;
      continue;
    }
    if (buffer.size() > kMaxLine) {
      send_all(fd, error_response(400, "request line exceeds 4 MiB") + "\n");
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, error, or SHUT_RD during stop
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  // Deregister before closing: the stop path must never shutdown(2) a
  // descriptor number the kernel may have already recycled.
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

}  // namespace rfdnet::svc
