#pragma once

#include <cstddef>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.hpp"

namespace rfdnet::svc {

struct DaemonConfig {
  /// AF_UNIX socket path. Created on `start()` (existing file unlinked),
  /// unlinked again on stop. Capped by the platform's sun_path limit.
  std::string socket_path;
  /// listen(2) backlog.
  int backlog = 64;
  /// > 0 prints the service status line to stderr roughly this often
  /// (wall-clock) while serving. Volatile, never part of any artifact.
  double heartbeat_s = 0.0;
};

/// AF_UNIX transport around a `Service`: accepts connections, reads
/// newline-delimited JSON requests, writes one response line per request.
/// One thread per connection (the daemon's concurrency ceiling is the job
/// queue, not the connection count).
///
/// Lifecycle: `start()` binds + listens; `serve()` blocks in a poll loop
/// until `request_stop()` (async-signal-safe — the SIGINT/SIGTERM handlers
/// call it) or a protocol `shutdown` request. Stopping closes the listener
/// first (new connects fail fast), drains the service (in-flight jobs
/// finish, their responses still go out), then shuts the remaining
/// connections' read side down and joins. `serve()` returns 0 on a clean
/// drain — the exit code contract the smoke test asserts.
class Daemon {
 public:
  Daemon(DaemonConfig cfg, Service& svc);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds and listens. False (with `error` filled) on failure.
  bool start(std::string* error);

  /// Accept loop; blocks until stopped. Returns the process exit code.
  int serve();

  /// Requests the serve loop to stop. Async-signal-safe (one write(2) to a
  /// self-pipe); callable from any thread or signal handler, idempotent.
  void request_stop();

 private:
  void handle_connection(int fd);
  void close_listener();

  DaemonConfig cfg_;
  Service& svc_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::mutex conn_mu_;
  std::set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace rfdnet::svc
