#include "net/topology_io.hpp"

#include <algorithm>
#include <limits>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rfdnet::net {

namespace {

Relationship parse_rel(const std::string& s) {
  if (s == "peer") return Relationship::kPeer;
  if (s == "customer") return Relationship::kCustomer;
  if (s == "provider") return Relationship::kProvider;
  throw std::invalid_argument("topology: unknown relationship '" + s + "'");
}

}  // namespace

void write_topology(std::ostream& os, const Graph& g) {
  // max_digits10 on the delay column makes the round trip exact:
  // parse_topology(serialize_topology(g)) reproduces every double bit for
  // bit. The stream's precision is restored before returning.
  const std::streamsize saved = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "# rfdnet topology: nodes=" << g.node_count()
     << " links=" << g.link_count() << "\n";
  os << "nodes " << g.node_count() << "\n";
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const auto& e : g.neighbors(u)) {
      if (e.neighbor < u) continue;  // emit each undirected link once
      os << u << ' ' << e.neighbor << ' ' << e.delay_s << ' '
         << to_string(e.rel) << "\n";
    }
  }
  os.precision(saved);
}

std::string serialize_topology(const Graph& g) {
  std::ostringstream os;
  write_topology(os, g);
  return os.str();
}

Graph read_topology(std::istream& is) {
  Graph g;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "nodes") {
      std::size_t n = 0;
      if (!(ls >> n)) {
        throw std::invalid_argument("topology: bad 'nodes' line " +
                                    std::to_string(lineno));
      }
      while (g.node_count() < n) g.add_node();
      continue;
    }
    NodeId u = 0, v = 0;
    double delay = 0;
    std::string rel;
    std::istringstream es(line);
    if (!(es >> u >> v >> delay >> rel)) {
      throw std::invalid_argument("topology: malformed line " +
                                  std::to_string(lineno));
    }
    const NodeId hi = std::max(u, v);
    while (g.node_count() <= hi) g.add_node();
    g.add_link(u, v, delay, parse_rel(rel));
  }
  return g;
}

Graph parse_topology(const std::string& text) {
  std::istringstream is(text);
  return read_topology(is);
}

}  // namespace rfdnet::net
