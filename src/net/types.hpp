#pragma once

#include <cstdint>
#include <string>

namespace rfdnet::net {

/// Identifies a node (an AS/router) in a topology. Dense, starting at 0.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Business relationship of a *neighbor* as seen from a given node, used by
/// the no-valley (Gao–Rexford) routing policy.
enum class Relationship : std::uint8_t {
  kPeer,      ///< settlement-free peer
  kCustomer,  ///< the neighbor is my customer (I am its provider)
  kProvider,  ///< the neighbor is my provider (I am its customer)
};

/// The same relationship seen from the other end of the link.
constexpr Relationship reverse(Relationship r) {
  switch (r) {
    case Relationship::kCustomer:
      return Relationship::kProvider;
    case Relationship::kProvider:
      return Relationship::kCustomer;
    case Relationship::kPeer:
      return Relationship::kPeer;
  }
  return Relationship::kPeer;  // unreachable
}

std::string to_string(Relationship r);

}  // namespace rfdnet::net
