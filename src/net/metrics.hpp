#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/graph.hpp"

namespace rfdnet::net {

/// Structural statistics of a topology — used by benches/examples to
/// characterize generated graphs (e.g. the long-tailed degree distribution
/// §5.1 requires of Internet-derived topologies).
struct GraphMetrics {
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  /// Number of degree-1 nodes (stub ASes).
  std::size_t leaves = 0;
  /// Longest shortest path (hop metric); 0 for empty/singleton graphs.
  std::size_t diameter = 0;
  /// Mean shortest-path length over all ordered reachable pairs.
  double mean_distance = 0.0;
  /// Counts of each relationship, over directed endpoint records.
  std::size_t peer_endpoints = 0;
  std::size_t customer_endpoints = 0;
  std::size_t provider_endpoints = 0;

  std::string to_string() const;
};

/// Computes all metrics. O(V * (V + E)) — BFS from every node — fine for
/// the simulator's topology sizes.
GraphMetrics compute_metrics(const Graph& g);

/// Degree histogram: index d holds the number of nodes with degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

}  // namespace rfdnet::net
