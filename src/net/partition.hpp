#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "net/graph.hpp"

namespace rfdnet::net {

/// A node-to-shard assignment plus the cut metrics sharded simulation needs:
/// how many links cross shards and the smallest propagation delay on any of
/// them — the conservative lookahead bound (a cross-shard update sent at
/// time t cannot arrive before t + min_cut_delay_s).
struct Partition {
  int shards = 1;
  std::vector<int> shard_of;               ///< node id -> shard index
  std::vector<std::size_t> shard_sizes;    ///< nodes per shard
  /// Sum of node degrees per shard — the event-load proxy the partitioner
  /// balances (deliveries and MRAI timers scale with incident links, not
  /// with node count).
  std::vector<std::size_t> shard_degrees;
  std::size_t cut_links = 0;               ///< undirected links crossing shards
  /// Min propagation delay over all cut links; +inf when nothing crosses
  /// (single shard, or shards happen to be disconnected from each other).
  double min_cut_delay_s = std::numeric_limits<double>::infinity();
  /// Per unordered shard pair {a < b}: min delay of the links between them.
  std::map<std::pair<int, int>, double> pair_min_delay_s;

  bool has_cut() const { return cut_links > 0; }
};

/// Greedy edge-cut partitioner: grows `shards` regions by repeatedly
/// absorbing the unassigned node with the most links into the growing region
/// (ties broken by smallest node id), seeding each region at the smallest
/// unassigned id. Deterministic — no randomness — so a given (graph, shards)
/// pair always yields the same partition.
///
/// Regions are balanced by *degree sum*, not node count: a shard stops
/// growing once it holds ceil(2m / shards) link endpoints (or when only
/// enough nodes remain to seed the later shards). Simulation load is
/// proportional to incident links — on hub-heavy graphs equal node counts
/// put most of the traffic in the hub's shard and serialize the run.
/// `shards` is clamped to the node count; `shards < 1` throws
/// std::invalid_argument.
Partition partition_graph(const Graph& g, int shards);

}  // namespace rfdnet::net
