#include "net/graph.hpp"

#include <stdexcept>
#include <vector>

namespace rfdnet::net {

std::string to_string(Relationship r) {
  switch (r) {
    case Relationship::kPeer:
      return "peer";
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kProvider:
      return "provider";
  }
  return "?";
}

NodeId Graph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

void Graph::check_node(NodeId u) const {
  if (u >= adj_.size()) throw std::invalid_argument("Graph: node out of range");
}

void Graph::add_link(NodeId u, NodeId v, double delay_s, Relationship rel_of_v) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("Graph: self loop");
  if (delay_s < 0) throw std::invalid_argument("Graph: negative delay");
  if (has_link(u, v)) throw std::invalid_argument("Graph: duplicate link");
  adj_[u].push_back(LinkEndpoint{v, rel_of_v, delay_s});
  adj_[v].push_back(LinkEndpoint{u, reverse(rel_of_v), delay_s});
  ++links_;
}

std::span<const LinkEndpoint> Graph::neighbors(NodeId u) const {
  check_node(u);
  return adj_[u];
}

bool Graph::has_link(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (const auto& e : adj_[u]) {
    if (e.neighbor == v) return true;
  }
  return false;
}

const LinkEndpoint& Graph::endpoint(NodeId u, NodeId v) const {
  check_node(u);
  for (const auto& e : adj_[u]) {
    if (e.neighbor == v) return e;
  }
  throw std::invalid_argument("Graph: no such link");
}

bool Graph::connected() const {
  if (adj_.empty()) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const auto& e : adj_[u]) {
      if (!seen[e.neighbor]) {
        seen[e.neighbor] = 1;
        ++visited;
        stack.push_back(e.neighbor);
      }
    }
  }
  return visited == adj_.size();
}

}  // namespace rfdnet::net
