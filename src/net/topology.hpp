#pragma once

#include "net/graph.hpp"
#include "sim/random.hpp"

namespace rfdnet::net {

/// Topology generators used by the paper's experiments (§5.1, §7) and by the
/// test suite. All links get propagation delay `delay_s`; relationships are
/// peer-peer unless stated otherwise.

/// 2-D grid of `w` x `h` nodes whose opposite edges wrap around (a torus), so
/// every node is topologically equal — the paper's "mesh" topology. Node
/// (x, y) has id y*w + x. Requires w >= 3 and h >= 3 so wraparound links do
/// not duplicate grid links.
Graph make_mesh_torus(int w, int h, double delay_s = 0.01);

/// Path 0 - 1 - ... - n-1. Requires n >= 2.
Graph make_line(int n, double delay_s = 0.01);

/// Cycle of n nodes. Requires n >= 3.
Graph make_ring(int n, double delay_s = 0.01);

/// Node 0 is the hub; all others are leaves. Requires n >= 2. Leaves are
/// customers of the hub.
Graph make_star(int n, double delay_s = 0.01);

/// Complete graph on n nodes. Requires n >= 2.
Graph make_clique(int n, double delay_s = 0.01);

/// Connected Erdős–Rényi-style graph: a random spanning tree plus each other
/// pair linked with probability p. Requires n >= 2, p in [0, 1].
Graph make_random(int n, double p, sim::Rng& rng, double delay_s = 0.01);

/// Options for the Internet-like generator.
struct InternetOptions {
  int attach_links = 2;         ///< links from a multihomed new node (BA m)
  /// Fraction of new nodes that are single-homed stubs (degree 1) — real AS
  /// graphs are majority-stub.
  double stub_fraction = 0.4;
  double extra_peer_frac = 0.05;///< extra peer-peer links, as fraction of n
  double delay_s = 0.01;
};

/// Internet-derived-style topology: preferential attachment yields the
/// long-tailed degree distribution of the AS graph; each new node becomes a
/// *customer* of the nodes it attaches to, and extra peer-peer links are
/// added between nodes of similar (high) degree. This substitutes for the
/// paper's BGP-table-derived AS graphs (see DESIGN.md). Requires n >= 3.
Graph make_internet_like(int n, sim::Rng& rng, const InternetOptions& opt = {});

/// BFS hop distances from `src` (unreachable nodes get SIZE_MAX).
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId src);

/// True if `path` (a sequence of adjacent nodes, destination last) is
/// valley-free under the graph's relationships: traversed in the direction
/// data flows, it climbs customer->provider links, crosses at most one peer
/// link, then descends provider->customer links.
bool valley_free(const Graph& g, const std::vector<NodeId>& path);

}  // namespace rfdnet::net
