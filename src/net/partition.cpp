#include "net/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace rfdnet::net {

Partition partition_graph(const Graph& g, int shards) {
  if (shards < 1) {
    throw std::invalid_argument("partition_graph: shards must be >= 1");
  }
  const std::size_t n = g.node_count();
  if (n == 0) {
    throw std::invalid_argument("partition_graph: empty graph");
  }
  const int k = std::min<int>(shards, static_cast<int>(n));

  Partition part;
  part.shards = k;
  part.shard_of.assign(n, -1);
  part.shard_sizes.assign(static_cast<std::size_t>(k), 0);
  part.shard_degrees.assign(static_cast<std::size_t>(k), 0);

  // Balance by degree sum (event load is proportional to incident links):
  // each shard stops growing at ceil(2m / k) link endpoints. On hub-heavy
  // graphs a node-count cap would hand the hub's shard most of the traffic.
  std::vector<std::size_t> deg(n, 0);
  std::size_t total_deg = 0;
  for (NodeId u = 0; u < n; ++u) {
    deg[u] = g.neighbors(u).size();
    total_deg += deg[u];
  }
  const std::size_t cap_deg = (total_deg + static_cast<std::size_t>(k) - 1) /
                              static_cast<std::size_t>(k);  // ceil(2m / k)

  // gain[u]: number of u's neighbors already inside the growing shard.
  // Rebuilt lazily per shard (reset to 0 when a new shard starts growing).
  std::vector<std::size_t> gain(n, 0);
  std::vector<NodeId> frontier;  // unassigned nodes adjacent to the shard
  NodeId seed_scan = 0;          // smallest possibly-unassigned id
  std::size_t assigned = 0;

  for (int s = 0; s < k; ++s) {
    // Seed: smallest unassigned id.
    while (seed_scan < n && part.shard_of[seed_scan] != -1) ++seed_scan;
    if (seed_scan >= n) break;  // everything assigned (k > remaining nodes)

    frontier.clear();
    NodeId current = seed_scan;
    while (true) {
      part.shard_of[current] = s;
      ++part.shard_sizes[static_cast<std::size_t>(s)];
      part.shard_degrees[static_cast<std::size_t>(s)] += deg[current];
      ++assigned;
      // Stop growing at the degree cap — except the last shard, which
      // absorbs the remainder — and always leave at least one seed node for
      // every shard still to come.
      if (s < k - 1 &&
          part.shard_degrees[static_cast<std::size_t>(s)] >= cap_deg) {
        break;
      }
      if (n - assigned <= static_cast<std::size_t>(k - 1 - s)) break;

      // Absorbing `current` raises the gain of its unassigned neighbors.
      for (const LinkEndpoint& e : g.neighbors(current)) {
        if (part.shard_of[e.neighbor] != -1) continue;
        if (gain[e.neighbor] == 0) frontier.push_back(e.neighbor);
        ++gain[e.neighbor];
      }
      // Pick the frontier node with the most links into the shard (ties:
      // smallest id), dropping entries assigned meanwhile.
      NodeId best = kInvalidNode;
      std::size_t best_gain = 0;
      std::size_t kept = 0;
      for (const NodeId u : frontier) {
        if (part.shard_of[u] != -1) continue;  // claimed by an earlier pick
        frontier[kept++] = u;
        if (gain[u] > best_gain || (gain[u] == best_gain && u < best)) {
          best = u;
          best_gain = gain[u];
        }
      }
      frontier.resize(kept);
      if (best == kInvalidNode) {
        // Shard region exhausted (component boundary): restart growth from
        // the smallest unassigned id, staying in the same shard until full.
        while (seed_scan < n && part.shard_of[seed_scan] != -1) ++seed_scan;
        if (seed_scan >= n) break;
        current = seed_scan;
        continue;
      }
      current = best;
    }
    // Reset gains touched by this shard so the next shard starts clean.
    for (const NodeId u : frontier) gain[u] = 0;
  }
  // Leftovers (only when the degree caps filled every shard before covering
  // n, which the last-shard and seed-reservation rules prevent — but stay
  // safe): lightest shard by degree sum wins.
  for (NodeId u = 0; u < n; ++u) {
    if (part.shard_of[u] != -1) continue;
    const auto lightest = static_cast<int>(
        std::min_element(part.shard_degrees.begin(),
                         part.shard_degrees.end()) -
        part.shard_degrees.begin());
    part.shard_of[u] = lightest;
    ++part.shard_sizes[static_cast<std::size_t>(lightest)];
    part.shard_degrees[static_cast<std::size_t>(lightest)] += deg[u];
  }

  // Cut metrics: every undirected link whose endpoints land apart.
  for (NodeId u = 0; u < n; ++u) {
    for (const LinkEndpoint& e : g.neighbors(u)) {
      if (e.neighbor < u) continue;  // visit each undirected link once
      const int a = part.shard_of[u];
      const int b = part.shard_of[e.neighbor];
      if (a == b) continue;
      ++part.cut_links;
      part.min_cut_delay_s = std::min(part.min_cut_delay_s, e.delay_s);
      const auto key = std::make_pair(std::min(a, b), std::max(a, b));
      const auto it = part.pair_min_delay_s.find(key);
      if (it == part.pair_min_delay_s.end()) {
        part.pair_min_delay_s.emplace(key, e.delay_s);
      } else if (e.delay_s < it->second) {
        it->second = e.delay_s;
      }
    }
  }
  return part;
}

}  // namespace rfdnet::net
