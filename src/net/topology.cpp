#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rfdnet::net {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

Graph make_mesh_torus(int w, int h, double delay_s) {
  require(w >= 3 && h >= 3, "make_mesh_torus: need w, h >= 3");
  Graph g(static_cast<std::size_t>(w) * h);
  const auto id = [w](int x, int y) {
    return static_cast<NodeId>(y * w + x);
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      g.add_link(id(x, y), id((x + 1) % w, y), delay_s);
      g.add_link(id(x, y), id(x, (y + 1) % h), delay_s);
    }
  }
  return g;
}

Graph make_line(int n, double delay_s) {
  require(n >= 2, "make_line: need n >= 2");
  Graph g(static_cast<std::size_t>(n));
  for (int i = 0; i + 1 < n; ++i) {
    g.add_link(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), delay_s);
  }
  return g;
}

Graph make_ring(int n, double delay_s) {
  require(n >= 3, "make_ring: need n >= 3");
  Graph g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    g.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
               delay_s);
  }
  return g;
}

Graph make_star(int n, double delay_s) {
  require(n >= 2, "make_star: need n >= 2");
  Graph g(static_cast<std::size_t>(n));
  for (int i = 1; i < n; ++i) {
    g.add_link(0, static_cast<NodeId>(i), delay_s, Relationship::kCustomer);
  }
  return g;
}

Graph make_clique(int n, double delay_s) {
  require(n >= 2, "make_clique: need n >= 2");
  Graph g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      g.add_link(static_cast<NodeId>(i), static_cast<NodeId>(j), delay_s);
    }
  }
  return g;
}

Graph make_random(int n, double p, sim::Rng& rng, double delay_s) {
  require(n >= 2, "make_random: need n >= 2");
  require(p >= 0.0 && p <= 1.0, "make_random: p out of [0,1]");
  Graph g(static_cast<std::size_t>(n));
  // Random spanning tree (random attachment) guarantees connectivity.
  for (int i = 1; i < n; ++i) {
    const auto parent =
        static_cast<NodeId>(rng.uniform_index(static_cast<std::uint64_t>(i)));
    g.add_link(static_cast<NodeId>(i), parent, delay_s);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto u = static_cast<NodeId>(i);
      const auto v = static_cast<NodeId>(j);
      if (!g.has_link(u, v) && rng.bernoulli(p)) g.add_link(u, v, delay_s);
    }
  }
  return g;
}

Graph make_internet_like(int n, sim::Rng& rng, const InternetOptions& opt) {
  require(n >= 3, "make_internet_like: need n >= 3");
  require(opt.attach_links >= 1, "make_internet_like: attach_links >= 1");
  require(opt.stub_fraction >= 0.0 && opt.stub_fraction <= 1.0,
          "make_internet_like: stub_fraction out of [0,1]");
  require(std::isfinite(opt.extra_peer_frac) && opt.extra_peer_frac >= 0.0,
          "make_internet_like: extra_peer_frac must be finite and >= 0");
  require(std::isfinite(opt.delay_s) && opt.delay_s > 0.0,
          "make_internet_like: delay_s must be finite and > 0");
  Graph g(static_cast<std::size_t>(n));

  // Preferential attachment via the repeated-endpoint trick: every endpoint
  // of every existing link goes into `endpoints`, so sampling it uniformly
  // picks nodes proportionally to degree.
  std::vector<NodeId> endpoints;
  g.add_link(0, 1, opt.delay_s, Relationship::kProvider);  // 1 provides for 0
  endpoints.push_back(0);
  endpoints.push_back(1);

  for (int i = 2; i < n; ++i) {
    const auto u = static_cast<NodeId>(i);
    const bool stub = rng.bernoulli(opt.stub_fraction);
    const int m = stub ? 1 : std::min(opt.attach_links, i);
    int added = 0;
    int guard = 0;
    while (added < m && guard < 64 * m) {
      ++guard;
      const NodeId target = endpoints[rng.uniform_index(endpoints.size())];
      if (target == u || g.has_link(u, target)) continue;
      // The newcomer attaches *below* the incumbent: target is u's provider.
      g.add_link(u, target, opt.delay_s, Relationship::kProvider);
      endpoints.push_back(u);
      endpoints.push_back(target);
      ++added;
    }
    if (added == 0) {
      // Degenerate fallback (the sampler kept hitting u or nodes u already
      // links to): attach deterministically to the smallest earlier node not
      // yet linked. One always exists — u attached fewer than i links, so
      // some v < u is free — and Graph::add_link rejects self loops and
      // duplicates, so blindly attaching to node 0 would throw here.
      for (NodeId v = 0; v < u; ++v) {
        if (g.has_link(u, v)) continue;
        g.add_link(u, v, opt.delay_s, Relationship::kProvider);
        endpoints.push_back(u);
        endpoints.push_back(v);
        break;
      }
    }
  }

  // Peer links between similar-rank nodes: sort by degree, link some
  // neighbors in that ranking that are not already connected.
  const auto extra =
      static_cast<int>(opt.extra_peer_frac * static_cast<double>(n));
  if (extra > 0) {
    std::vector<NodeId> by_degree(static_cast<std::size_t>(n));
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::sort(by_degree.begin(), by_degree.end(), [&g](NodeId a, NodeId b) {
      if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
      return a < b;
    });
    int added = 0;
    int guard = 0;
    while (added < extra && guard < 64 * extra) {
      ++guard;
      // Pick a node biased toward the top of the ranking and pair it with a
      // near neighbor in rank (similar degree -> plausibly a peer).
      const auto i = static_cast<std::size_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n) / 2 + 1));
      const auto j = i + 1 + rng.uniform_index(3);
      if (j >= by_degree.size()) continue;
      const NodeId a = by_degree[i];
      const NodeId b = by_degree[j];
      if (a == b || g.has_link(a, b)) continue;
      g.add_link(a, b, opt.delay_s, Relationship::kPeer);
      ++added;
    }
  }
  return g;
}

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId src) {
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.node_count(), kInf);
  if (src >= g.node_count()) throw std::invalid_argument("bfs: bad source");
  std::vector<NodeId> frontier{src};
  dist[src] = 0;
  std::size_t d = 0;
  while (!frontier.empty()) {
    ++d;
    std::vector<NodeId> next;
    for (const NodeId u : frontier) {
      for (const auto& e : g.neighbors(u)) {
        if (dist[e.neighbor] == kInf) {
          dist[e.neighbor] = d;
          next.push_back(e.neighbor);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

bool valley_free(const Graph& g, const std::vector<NodeId>& path) {
  if (path.size() < 2) return true;
  // Phases: 0 = climbing (customer->provider), 1 = after the single peer
  // crossing or at the top, 2 = descending (provider->customer).
  int phase = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Relationship rel = g.endpoint(path[i], path[i + 1]).rel;
    switch (rel) {
      case Relationship::kProvider:  // uphill step
        if (phase != 0) return false;
        break;
      case Relationship::kPeer:  // the single allowed lateral step
        if (phase >= 1) return false;
        phase = 1;
        break;
      case Relationship::kCustomer:  // downhill step
        phase = 2;
        break;
    }
  }
  return true;
}

}  // namespace rfdnet::net
