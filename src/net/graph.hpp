#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/types.hpp"

namespace rfdnet::net {

/// One end of an undirected link, as seen from the node that owns the
/// adjacency list entry.
struct LinkEndpoint {
  NodeId neighbor = kInvalidNode;
  Relationship rel = Relationship::kPeer;  ///< what `neighbor` is to me
  double delay_s = 0.01;                   ///< one-way propagation delay
};

/// An undirected multigraph-free graph of ASes with per-link propagation
/// delay and business relationships. Node ids are dense [0, size).
///
/// Invariant: adjacency lists of the two endpoints of a link are mirror
/// images (same delay; reversed relationship), and there is at most one link
/// per node pair and no self loops.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adj_(n) {}

  /// Appends a new isolated node and returns its id.
  NodeId add_node();

  /// Adds the undirected link {u, v}. `rel_of_v` is what v is to u (the
  /// reverse is recorded at v automatically). Throws `std::invalid_argument`
  /// on self loops, out-of-range ids, duplicate links, or negative delay.
  void add_link(NodeId u, NodeId v, double delay_s = 0.01,
                Relationship rel_of_v = Relationship::kPeer);

  std::size_t node_count() const { return adj_.size(); }
  std::size_t link_count() const { return links_; }

  std::span<const LinkEndpoint> neighbors(NodeId u) const;
  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  bool has_link(NodeId u, NodeId v) const;

  /// The endpoint record for v in u's adjacency list. Throws if absent.
  const LinkEndpoint& endpoint(NodeId u, NodeId v) const;

  /// True if every node can reach every other node.
  bool connected() const;

 private:
  void check_node(NodeId u) const;

  std::vector<std::vector<LinkEndpoint>> adj_;
  std::size_t links_ = 0;
};

}  // namespace rfdnet::net
