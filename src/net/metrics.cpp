#include "net/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "net/topology.hpp"

namespace rfdnet::net {

std::string GraphMetrics::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu nodes, %zu links, degree %zu..%zu (mean %.2f), "
                "%zu leaves, diameter %zu, mean distance %.2f",
                nodes, links, min_degree, max_degree, mean_degree, leaves,
                diameter, mean_distance);
  return buf;
}

GraphMetrics compute_metrics(const Graph& g) {
  GraphMetrics m;
  m.nodes = g.node_count();
  m.links = g.link_count();
  if (m.nodes == 0) return m;

  m.min_degree = SIZE_MAX;
  std::size_t degree_sum = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const std::size_t d = g.degree(u);
    m.min_degree = std::min(m.min_degree, d);
    m.max_degree = std::max(m.max_degree, d);
    degree_sum += d;
    m.leaves += d == 1;
    for (const auto& e : g.neighbors(u)) {
      switch (e.rel) {
        case Relationship::kPeer:
          ++m.peer_endpoints;
          break;
        case Relationship::kCustomer:
          ++m.customer_endpoints;
          break;
        case Relationship::kProvider:
          ++m.provider_endpoints;
          break;
      }
    }
  }
  m.mean_degree = static_cast<double>(degree_sum) / static_cast<double>(m.nodes);

  std::size_t pair_count = 0;
  std::size_t dist_sum = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto dist = bfs_distances(g, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == u || dist[v] == SIZE_MAX) continue;
      m.diameter = std::max(m.diameter, dist[v]);
      dist_sum += dist[v];
      ++pair_count;
    }
  }
  if (pair_count > 0) {
    m.mean_distance =
        static_cast<double>(dist_sum) / static_cast<double>(pair_count);
  }
  return m;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const std::size_t d = g.degree(u);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace rfdnet::net
