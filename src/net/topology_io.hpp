#pragma once

#include <iosfwd>
#include <string>

#include "net/graph.hpp"

namespace rfdnet::net {

/// Plain-text edge-list format, one link per line:
///
///   <u> <v> <delay_seconds> <relationship-of-v-to-u>
///
/// where the relationship is one of `peer`, `customer`, `provider`. Lines
/// starting with '#' and blank lines are ignored. A header line
/// `nodes <n>` may pre-declare the node count (needed for isolated nodes).

/// Serializes `g` in the format above.
std::string serialize_topology(const Graph& g);
void write_topology(std::ostream& os, const Graph& g);

/// Parses the format above. Throws `std::invalid_argument` on malformed
/// input (unknown relationship, bad ids, duplicate links, ...).
Graph parse_topology(const std::string& text);
Graph read_topology(std::istream& is);

}  // namespace rfdnet::net
